//! Heuristic minor embedding of QUBO graphs into hardware graphs.
//!
//! Annealers can only couple physically adjacent qubits. A QUBO whose
//! interaction graph does not match the hardware graph is *minor-embedded*:
//! each logical variable becomes a *chain* of physical qubits that behaves
//! as one spin (held together by a strong ferromagnetic coupling), and each
//! logical interaction must be realised by at least one physical coupler
//! between the two chains.
//!
//! The embedder follows the minorminer recipe (Cai, Macready, Roy 2014):
//! variables are placed one at a time; each new variable runs a
//! usage-penalised multi-source Dijkstra from every already-placed
//! neighbour's chain, picks the root vertex minimising the total path cost,
//! and claims the union of the paths. Overlaps are allowed during
//! construction but penalised exponentially; improvement passes then rip up
//! and re-route the contended chains until the embedding is overlap-free
//! (or attempts are exhausted). Three refinements keep the loop from
//! cycling: chains are trimmed to leaf-free cores after every pass, a
//! best-state snapshot is restored when a pass runs away, and a
//! large-neighbourhood "kick" (tearing out *all* contended chains at once,
//! with a grace period before snap-back) breaks multi-chain contention
//! cycles that single-chain moves reproduce.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::seq::{IndexedRandom, SliceRandom};
use rand::SeedableRng;

use qjo_transpile::Topology;

/// A minor embedding: `chains[v]` lists the physical qubits representing
/// logical variable `v`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Embedding {
    /// Physical qubit chains, one per logical variable.
    pub chains: Vec<Vec<usize>>,
}

/// Why an embedding is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmbeddingError {
    /// A variable's chain is empty.
    EmptyChain(usize),
    /// Two chains share physical qubit `qubit`.
    Overlap {
        /// First chain.
        a: usize,
        /// Second chain.
        b: usize,
        /// The shared physical qubit.
        qubit: usize,
    },
    /// A chain is not connected in the hardware graph.
    DisconnectedChain(usize),
    /// A source edge has no physical coupler between its chains.
    MissingCoupler(usize, usize),
}

impl std::fmt::Display for EmbeddingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmbeddingError::EmptyChain(v) => write!(f, "variable {v} has an empty chain"),
            EmbeddingError::Overlap { a, b, qubit } => {
                write!(f, "chains {a} and {b} overlap at physical qubit {qubit}")
            }
            EmbeddingError::DisconnectedChain(v) => {
                write!(f, "chain of variable {v} is disconnected")
            }
            EmbeddingError::MissingCoupler(a, b) => {
                write!(f, "no physical coupler between chains {a} and {b}")
            }
        }
    }
}

impl std::error::Error for EmbeddingError {}

impl From<EmbeddingError> for qjo_resil::QjoError {
    fn from(e: EmbeddingError) -> Self {
        qjo_resil::QjoError::Embedding(e.to_string())
    }
}

impl Embedding {
    /// Total physical qubits used (the quantity Fig. 3 reports).
    pub fn num_physical_qubits(&self) -> usize {
        self.chains.iter().map(Vec::len).sum()
    }

    /// Length of the longest chain.
    pub fn max_chain_length(&self) -> usize {
        self.chains.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Mean chain length.
    pub fn mean_chain_length(&self) -> f64 {
        if self.chains.is_empty() {
            return 0.0;
        }
        self.num_physical_qubits() as f64 / self.chains.len() as f64
    }

    /// Verifies minor-embedding validity: non-empty, pairwise-disjoint,
    /// connected chains, and a physical coupler for every source edge.
    pub fn validate(
        &self,
        source_edges: &[(usize, usize)],
        target: &Topology,
    ) -> Result<(), EmbeddingError> {
        let mut owner = vec![usize::MAX; target.num_qubits()];
        for (v, chain) in self.chains.iter().enumerate() {
            if chain.is_empty() {
                return Err(EmbeddingError::EmptyChain(v));
            }
            for &q in chain {
                if owner[q] != usize::MAX {
                    return Err(EmbeddingError::Overlap { a: owner[q], b: v, qubit: q });
                }
                owner[q] = v;
            }
        }
        // Connectivity of each chain (BFS within the chain set).
        for (v, chain) in self.chains.iter().enumerate() {
            let inside: std::collections::HashSet<usize> = chain.iter().copied().collect();
            let mut seen = std::collections::HashSet::from([chain[0]]);
            let mut stack = vec![chain[0]];
            while let Some(q) = stack.pop() {
                for &w in target.neighbors(q) {
                    if inside.contains(&w) && seen.insert(w) {
                        stack.push(w);
                    }
                }
            }
            if seen.len() != chain.len() {
                return Err(EmbeddingError::DisconnectedChain(v));
            }
        }
        // Edge coverage.
        for &(a, b) in source_edges {
            let covered = self.chains[a]
                .iter()
                .any(|&qa| target.neighbors(qa).iter().any(|&w| self.chains[b].contains(&w)));
            if !covered {
                return Err(EmbeddingError::MissingCoupler(a, b));
            }
        }
        Ok(())
    }
}

/// Configuration of the embedding heuristic.
#[derive(Debug, Clone)]
pub struct Embedder {
    /// Independent restarts with different variable orders.
    pub max_tries: usize,
    /// Rip-up-and-re-route passes per try.
    pub improvement_passes: usize,
    /// Base of the exponential overlap penalty.
    pub penalty_base: f64,
    /// Ignored. Formerly a wall-clock budget in seconds; the budget is
    /// now attempt-based (`max_tries`), so embedding outcomes are a pure
    /// function of the inputs instead of machine speed. The field stays
    /// so existing struct literals keep compiling.
    #[deprecated(note = "wall-clock budgets are gone; bound work with `max_tries` instead")]
    pub time_budget_secs: Option<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Embedder {
    #[allow(deprecated)]
    fn default() -> Self {
        Embedder {
            max_tries: 8,
            improvement_passes: 64,
            penalty_base: 8.0,
            time_budget_secs: None,
            seed: 0,
        }
    }
}

struct State<'a> {
    target: &'a Topology,
    chains: Vec<Vec<usize>>,
    usage: Vec<u32>,
    /// Cached `penalty_base^usage[q]`, kept in sync by claim/release.
    cost: Vec<f64>,
    adjacency: Vec<Vec<usize>>, // source graph
    penalty_base: f64,
    /// Scratch buffers reused across Dijkstra runs (one pair per source
    /// neighbour of the variable currently being placed).
    dist_pool: Vec<Vec<f64>>,
    pred_pool: Vec<Vec<usize>>,
    /// `owner[q] == v` marks q as inside the neighbour chain a path walk is
    /// currently targeting (epoch-stamped via `owner_epoch`).
    owner_epoch: Vec<u32>,
    epoch: u32,
}

impl<'a> State<'a> {
    fn new(
        target: &'a Topology,
        num_vars: usize,
        adjacency: Vec<Vec<usize>>,
        penalty_base: f64,
    ) -> Self {
        let n = target.num_qubits();
        State {
            target,
            chains: vec![Vec::new(); num_vars],
            usage: vec![0; n],
            cost: vec![1.0; n],
            adjacency,
            penalty_base,
            dist_pool: Vec::new(),
            pred_pool: Vec::new(),
            owner_epoch: vec![0; n],
            epoch: 0,
        }
    }

    fn set_penalty_base(&mut self, base: f64) {
        self.penalty_base = base;
        for (q, c) in self.cost.iter_mut().enumerate() {
            *c = base.powi(self.usage[q] as i32);
        }
    }

    fn claim(&mut self, v: usize, chain: Vec<usize>) {
        for &q in &chain {
            self.usage[q] += 1;
            self.cost[q] = self.penalty_base.powi(self.usage[q] as i32);
        }
        self.chains[v] = chain;
    }

    fn release(&mut self, v: usize) {
        let chain = std::mem::take(&mut self.chains[v]);
        for &q in &chain {
            self.usage[q] -= 1;
            self.cost[q] = self.penalty_base.powi(self.usage[q] as i32);
        }
    }

    /// Usage-weighted multi-source Dijkstra from every qubit of `sources`
    /// into the provided scratch buffers; source qubits cost 0.
    fn dijkstra_into(&self, sources: &[usize], dist: &mut Vec<f64>, pred: &mut Vec<usize>) {
        let n = self.target.num_qubits();
        dist.clear();
        dist.resize(n, f64::INFINITY);
        pred.clear();
        pred.resize(n, usize::MAX);
        let mut heap: BinaryHeap<Reverse<(OrderedF64, usize)>> = BinaryHeap::with_capacity(n / 4);
        for &s in sources {
            dist[s] = 0.0;
            heap.push(Reverse((OrderedF64(0.0), s)));
        }
        while let Some(Reverse((OrderedF64(d), q))) = heap.pop() {
            if d > dist[q] {
                continue;
            }
            for &w in self.target.neighbors(q) {
                let nd = d + self.cost[w];
                if nd < dist[w] {
                    dist[w] = nd;
                    pred[w] = q;
                    heap.push(Reverse((OrderedF64(nd), w)));
                }
            }
        }
    }

    /// (Re-)places variable `v`, allowing overlaps (penalised).
    fn place(&mut self, v: usize, rng: &mut StdRng) {
        let placed_neighbors: Vec<usize> =
            self.adjacency[v].iter().copied().filter(|&u| !self.chains[u].is_empty()).collect();
        if placed_neighbors.is_empty() {
            // Isolated (so far): take the least-used qubit, random tie-break.
            let min_use = *self.usage.iter().min().expect("non-empty target");
            let candidates: Vec<usize> =
                (0..self.usage.len()).filter(|&q| self.usage[q] == min_use).collect();
            let q = *candidates.choose(rng).expect("non-empty");
            self.claim(v, vec![q]);
            return;
        }

        // One Dijkstra per placed neighbour chain, into pooled buffers.
        let deg = placed_neighbors.len();
        while self.dist_pool.len() < deg {
            self.dist_pool.push(Vec::new());
            self.pred_pool.push(Vec::new());
        }
        for (run, &u) in placed_neighbors.iter().enumerate() {
            let mut dist = std::mem::take(&mut self.dist_pool[run]);
            let mut pred = std::mem::take(&mut self.pred_pool[run]);
            let sources = std::mem::take(&mut self.chains[u]);
            self.dijkstra_into(&sources, &mut dist, &mut pred);
            self.chains[u] = sources;
            self.dist_pool[run] = dist;
            self.pred_pool[run] = pred;
        }

        // Root minimising total path cost (the root's own usage cost is
        // counted once per run — a harmless bias toward unused roots).
        let n = self.target.num_qubits();
        let mut best_root = usize::MAX;
        let mut best_cost = f64::INFINITY;
        for q in 0..n {
            let mut total = self.cost[q];
            for dist in &self.dist_pool[..deg] {
                total += dist[q];
                if total >= best_cost {
                    break;
                }
            }
            if total < best_cost {
                best_cost = total;
                best_root = q;
            }
        }
        assert!(best_root != usize::MAX, "target graph has no vertices");

        // Chain = root plus interior of each path back to the neighbour
        // chains (path endpoints inside neighbour chains are excluded).
        let mut chain_set = std::collections::BTreeSet::from([best_root]);
        for (run_idx, &u) in placed_neighbors.iter().enumerate() {
            // Epoch-stamp the neighbour chain for O(1) membership checks.
            self.epoch += 1;
            for &q in &self.chains[u] {
                self.owner_epoch[q] = self.epoch;
            }
            let pred = &self.pred_pool[run_idx];
            let mut cur = best_root;
            while self.owner_epoch[cur] != self.epoch {
                chain_set.insert(cur);
                cur = pred[cur];
                if cur == usize::MAX {
                    // Neighbour unreachable; leave partial (validation will
                    // reject, and the next try may fare better).
                    break;
                }
            }
        }
        self.claim(v, chain_set.into_iter().collect());
    }

    /// Removes unnecessary leaf qubits from `v`'s chain while keeping the
    /// chain connected and every placed-neighbour adjacency covered.
    /// Run between improvement passes to keep chains lean.
    fn trim(&mut self, v: usize) {
        loop {
            let chain = &self.chains[v];
            if chain.len() <= 1 {
                return;
            }
            self.epoch += 1;
            for &q in chain {
                self.owner_epoch[q] = self.epoch;
            }
            let chain_epoch = self.epoch;
            let mut removed = None;
            'candidates: for (idx, &q) in chain.iter().enumerate() {
                let internal_degree = self
                    .target
                    .neighbors(q)
                    .iter()
                    .filter(|&&w| self.owner_epoch[w] == chain_epoch)
                    .count();
                if internal_degree != 1 {
                    continue;
                }
                for &u in &self.adjacency[v] {
                    let other = &self.chains[u];
                    if other.is_empty() {
                        continue;
                    }
                    let covered = chain.iter().enumerate().any(|(j, &qa)| {
                        j != idx && self.target.neighbors(qa).iter().any(|w| other.contains(w))
                    });
                    if !covered {
                        continue 'candidates;
                    }
                }
                removed = Some((idx, q));
                break;
            }
            match removed {
                Some((idx, q)) => {
                    self.chains[v].remove(idx);
                    self.usage[q] -= 1;
                    self.cost[q] = self.penalty_base.powi(self.usage[q] as i32);
                }
                None => return,
            }
        }
    }

    fn max_usage(&self) -> u32 {
        self.usage.iter().copied().max().unwrap_or(0)
    }

    /// Replaces all chains with a snapshot, rebuilding usage and costs.
    fn restore(&mut self, chains: &[Vec<usize>]) {
        self.chains = chains.to_vec();
        self.usage.fill(0);
        for chain in &self.chains {
            for &q in chain {
                self.usage[q] += 1;
            }
        }
        let base = self.penalty_base;
        for (q, c) in self.cost.iter_mut().enumerate() {
            *c = base.powi(self.usage[q] as i32);
        }
    }
}

/// Total-order wrapper for f64 heap keys (costs are never NaN).
#[derive(PartialEq)]
struct OrderedF64(f64);
impl Eq for OrderedF64 {}
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("costs are never NaN")
    }
}
impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Embedder {
    /// Attempts to embed the source graph (given as `num_vars` and an edge
    /// list) into `target`. Returns a validated embedding or `None`.
    pub fn embed(
        &self,
        num_vars: usize,
        source_edges: &[(usize, usize)],
        target: &Topology,
    ) -> Option<Embedding> {
        if num_vars == 0 {
            return Some(Embedding { chains: Vec::new() });
        }
        if target.num_qubits() == 0 {
            return None;
        }
        let mut adjacency = vec![Vec::new(); num_vars];
        for &(a, b) in source_edges {
            assert!(a < num_vars && b < num_vars, "source edge out of range");
            if a != b {
                adjacency[a].push(b);
                adjacency[b].push(a);
            }
        }
        for list in &mut adjacency {
            list.sort_unstable();
            list.dedup();
        }

        let mut rng = StdRng::seed_from_u64(self.seed);
        for _try in 0..self.max_tries {
            qjo_obs::counter!("embed.tries").incr();
            let mut state = State::new(target, num_vars, adjacency.clone(), self.penalty_base);
            // Place in BFS order from a max-degree variable (random
            // tie-breaking), so every new variable lands next to already
            // placed neighbours instead of a random spot.
            let mut order: Vec<usize> = (0..num_vars).collect();
            order.shuffle(&mut rng);
            order.sort_by_key(|&v| Reverse(state.adjacency[v].len()));
            let order = {
                let mut bfs = Vec::with_capacity(num_vars);
                let mut seen = vec![false; num_vars];
                for &start in &order {
                    if seen[start] {
                        continue;
                    }
                    seen[start] = true;
                    let mut queue = std::collections::VecDeque::from([start]);
                    while let Some(v) = queue.pop_front() {
                        bfs.push(v);
                        for &u in &state.adjacency[v] {
                            if !seen[u] {
                                seen[u] = true;
                                queue.push_back(u);
                            }
                        }
                    }
                }
                bfs
            };
            for &v in &order {
                state.place(v, &mut rng);
            }
            // Rip up and re-route every variable until overlap-free
            // (minorminer's improvement loop), ramping the overlap penalty
            // so persistent contention gets increasingly expensive. When
            // one-at-a-time re-routing stalls, a large-neighbourhood kick
            // tears out *all* contended chains at once and re-places them,
            // which breaks the A↔B↔C contention cycles single-variable
            // moves keep reproducing.
            for v in 0..num_vars {
                state.trim(v);
            }
            let overfill_of =
                |state: &State| -> u32 { state.usage.iter().map(|&u| u.saturating_sub(1)).sum() };
            let mut best_chains = state.chains.clone();
            let mut best_overfill = overfill_of(&state);
            let mut stalled = 0usize;
            // Passes after a kick during which the (worse) perturbed state
            // is allowed to re-optimise without being snapped back.
            let mut grace = 0usize;
            let mut epoch_start = 0usize;
            for pass in 0..self.improvement_passes {
                if state.max_usage() <= 1 {
                    break;
                }
                // Escalate the overlap penalty steadily (×2 every few
                // passes, capped) so early passes can still share qubits
                // while late passes strongly repel contention. The schedule
                // restarts after each kick.
                state.set_penalty_base(
                    self.penalty_base
                        * (1u64 << ((pass - epoch_start) / 3 + stalled).min(9)) as f64,
                );
                // Re-route only the chains involved in contention; touching
                // settled chains mostly re-introduces churn. Every tenth
                // pass re-routes everything once, which lets a locally
                // congested blob of chains spread into free regions that
                // contended-only moves never reach.
                let mut contended: Vec<usize> = if pass % 10 == 9 {
                    (0..num_vars).collect()
                } else {
                    (0..num_vars)
                        .filter(|&v| state.chains[v].iter().any(|&q| state.usage[q] > 1))
                        .collect()
                };
                contended.shuffle(&mut rng);
                if stalled >= 4 {
                    // Large-neighbourhood kick: tear out all contended
                    // chains — plus a random half of their source-graph
                    // neighbours for diversity — to break contention cycles
                    // that one-at-a-time re-routing keeps reproducing.
                    // Re-place most-connected-first so no variable starts
                    // from a random orphan spot.
                    use rand::RngExt;
                    let mut widened: Vec<usize> = contended.clone();
                    for &v in &contended {
                        for &u in &state.adjacency[v] {
                            if rng.random_bool(0.5) {
                                widened.push(u);
                            }
                        }
                    }
                    widened.sort_unstable();
                    widened.dedup();
                    contended = widened;
                    for &v in &contended {
                        state.release(v);
                    }
                    contended.sort_by_key(|&v| {
                        Reverse(
                            state.adjacency[v]
                                .iter()
                                .filter(|&&u| !state.chains[u].is_empty())
                                .count(),
                        )
                    });
                    stalled = 0;
                    grace = 8;
                    epoch_start = pass;
                }
                for &v in &contended {
                    state.release(v);
                    state.place(v, &mut rng);
                }
                for &v in &contended {
                    state.trim(v);
                }
                let overfill = overfill_of(&state);
                if overfill < best_overfill {
                    best_overfill = overfill;
                    best_chains = state.chains.clone();
                    stalled = 0;
                } else if grace > 0 {
                    grace -= 1; // let a kick's perturbation settle
                } else {
                    stalled += 1;
                    // Runaway pass: restore the best snapshot rather than
                    // digging deeper into a worse configuration.
                    if overfill > best_overfill.saturating_mul(3) / 2 + 4 {
                        state.restore(&best_chains);
                    }
                }
                if qjo_obs::log::enabled(qjo_obs::log::Level::Debug) {
                    let chain_total: usize = state.chains.iter().map(Vec::len).sum();
                    qjo_obs::debug!(
                        "embed try {_try} pass {pass}: max_usage={} overfill={overfill} best={best_overfill} chain_qubits={chain_total}",
                        state.max_usage()
                    );
                }
            }
            if state.max_usage() > 1 && best_overfill < overfill_of(&state) {
                state.restore(&best_chains);
            }
            if state.max_usage() <= 1 {
                let mut embedding = Embedding { chains: state.chains };
                trim_chains(&mut embedding, &adjacency, target);
                if embedding.validate(source_edges, target).is_ok() {
                    return Some(embedding);
                }
            }
        }
        None
    }
}

/// Removes unnecessary chain qubits: leaf vertices of a chain's induced
/// subgraph are dropped while every logical adjacency stays covered.
#[allow(clippy::needless_range_loop)] // v indexes two structures in lockstep
fn trim_chains(embedding: &mut Embedding, adjacency: &[Vec<usize>], target: &Topology) {
    let num_vars = embedding.chains.len();
    for v in 0..num_vars {
        loop {
            let chain = &embedding.chains[v];
            if chain.len() <= 1 {
                break;
            }
            let inside: std::collections::HashSet<usize> = chain.iter().copied().collect();
            // Chain-internal degree of each member.
            let mut removable = None;
            'candidates: for (idx, &q) in chain.iter().enumerate() {
                let internal_degree =
                    target.neighbors(q).iter().filter(|w| inside.contains(w)).count();
                if internal_degree != 1 {
                    continue; // only leaves keep the chain connected on removal
                }
                // Every neighbour chain must stay reachable without q.
                for &u in &adjacency[v] {
                    let other = &embedding.chains[u];
                    if other.is_empty() {
                        continue;
                    }
                    let covered_without_q = chain.iter().enumerate().any(|(j, &qa)| {
                        j != idx && target.neighbors(qa).iter().any(|w| other.contains(w))
                    });
                    if !covered_without_q {
                        continue 'candidates;
                    }
                }
                removable = Some(idx);
                break;
            }
            match removable {
                Some(idx) => {
                    embedding.chains[v].remove(idx);
                }
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::{chimera, pegasus_like};

    fn complete_edges(n: usize) -> Vec<(usize, usize)> {
        let mut e = Vec::new();
        for a in 0..n {
            for b in a + 1..n {
                e.push((a, b));
            }
        }
        e
    }

    #[test]
    fn identity_embedding_on_matching_graph() {
        // Source = line of 4; target = line of 4 (plus slack).
        let target = Topology::line(8);
        let edges = vec![(0, 1), (1, 2), (2, 3)];
        // The embedder is randomised and not guaranteed minimal: some seeds
        // leave a redundant length-2 chain on this instance. Seed 1 is
        // pinned to one that finds the all-singleton embedding, which is
        // what this test is about.
        let e = (Embedder { seed: 1, ..Default::default() })
            .embed(4, &edges, &target)
            .expect("line into line");
        assert!(e.validate(&edges, &target).is_ok());
        // A path embeds with all chains length 1 after trimming.
        assert_eq!(e.max_chain_length(), 1, "chains: {:?}", e.chains);
    }

    #[test]
    fn triangle_into_line_is_impossible() {
        // K3 is not a minor of a path graph.
        let target = Topology::line(10);
        let edges = complete_edges(3);
        assert!(Embedder::default().embed(3, &edges, &target).is_none());
    }

    #[test]
    fn triangle_into_grid_uses_chains() {
        let target = Topology::grid(4, 4);
        let edges = complete_edges(3);
        let e = Embedder::default().embed(3, &edges, &target).expect("K3 into grid");
        assert!(e.validate(&edges, &target).is_ok());
    }

    #[test]
    fn k6_embeds_into_chimera_with_chains() {
        // Chimera has no K6 subgraph (max degree 6, bipartite cells), so
        // chains are mandatory; minorminer-class heuristics find this easily.
        let target = chimera(4);
        let edges = complete_edges(6);
        let e = Embedder::default().embed(6, &edges, &target).expect("K6 into C4");
        assert!(e.validate(&edges, &target).is_ok());
        assert!(e.max_chain_length() >= 2, "K6 needs chains on Chimera");
    }

    #[test]
    fn larger_cliques_fit_pegasus_like() {
        let target = pegasus_like(6);
        let edges = complete_edges(10);
        let e = Embedder { seed: 1, ..Default::default() }
            .embed(10, &edges, &target)
            .expect("K10 into Pegasus-like(6)");
        assert!(e.validate(&edges, &target).is_ok());
        // Clique embeddings on Pegasus need roughly n²/12-ish qubits; just
        // sanity-bound the overhead.
        assert!(e.num_physical_qubits() >= 10);
        assert!(e.num_physical_qubits() < 200);
    }

    #[test]
    fn pegasus_beats_chimera_on_clique_size() {
        // Same physical-qubit budget: the denser graph needs fewer qubits
        // for the same clique.
        let n = 8;
        let edges = complete_edges(n);
        let ce = Embedder::default().embed(n, &edges, &chimera(5)).expect("K8 on chimera");
        let pe = Embedder::default().embed(n, &edges, &pegasus_like(5)).expect("K8 on pegasus");
        assert!(
            pe.num_physical_qubits() <= ce.num_physical_qubits(),
            "pegasus {} vs chimera {}",
            pe.num_physical_qubits(),
            ce.num_physical_qubits()
        );
    }

    #[test]
    fn validation_rejects_broken_embeddings() {
        let target = Topology::line(6);
        let edges = vec![(0, 1)];
        // Empty chain.
        let e = Embedding { chains: vec![vec![], vec![0]] };
        assert!(matches!(e.validate(&edges, &target), Err(EmbeddingError::EmptyChain(0))));
        // Overlap.
        let e = Embedding { chains: vec![vec![2], vec![2]] };
        assert!(matches!(
            e.validate(&edges, &target),
            Err(EmbeddingError::Overlap { qubit: 2, .. })
        ));
        // Disconnected chain.
        let e = Embedding { chains: vec![vec![0, 3], vec![1]] };
        assert!(matches!(e.validate(&edges, &target), Err(EmbeddingError::DisconnectedChain(0))));
        // Missing coupler.
        let e = Embedding { chains: vec![vec![0], vec![4]] };
        assert!(matches!(e.validate(&edges, &target), Err(EmbeddingError::MissingCoupler(0, 1))));
        // And a correct one passes.
        let e = Embedding { chains: vec![vec![0], vec![1]] };
        assert!(e.validate(&edges, &target).is_ok());
    }

    #[test]
    fn deterministic_per_seed() {
        let target = chimera(4);
        let edges = complete_edges(5);
        let a = Embedder { seed: 9, ..Default::default() }.embed(5, &edges, &target);
        let b = Embedder { seed: 9, ..Default::default() }.embed(5, &edges, &target);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_trivial_sources() {
        let target = Topology::line(4);
        let e = Embedder::default().embed(0, &[], &target).expect("empty source");
        assert_eq!(e.chains.len(), 0);
        let e = Embedder::default().embed(2, &[], &target).expect("two isolated vars");
        assert_eq!(e.chains.len(), 2);
        assert!(e.validate(&[], &target).is_ok());
    }

    #[test]
    fn chain_statistics() {
        let e = Embedding { chains: vec![vec![0, 1, 2], vec![3]] };
        assert_eq!(e.num_physical_qubits(), 4);
        assert_eq!(e.max_chain_length(), 3);
        assert!((e.mean_chain_length() - 2.0).abs() < 1e-12);
    }
}
