//! Chain strength selection and chain readout.
//!
//! A chain of physical qubits represents one logical spin only while its
//! members agree; the intra-chain ferromagnetic coupling must be strong
//! enough to hold them together, yet not so strong that it drowns the
//! problem couplings in the device's limited analogue range. Readout maps
//! possibly-broken chains back to logical spins by majority vote.

use qjo_qubo::IsingModel;

use crate::embed::Embedding;

/// Uniform torque compensation (the D-Wave Ocean default heuristic):
/// `strength = prefactor · max|J| · sqrt(mean logical degree)`.
///
/// The intuition: a chain member feels at most ~degree problem couplings of
/// magnitude ≤ max|J| "pulling" on it; the RMS torque grows with the square
/// root of the degree.
pub fn uniform_torque_compensation(ising: &IsingModel, prefactor: f64) -> f64 {
    let n = ising.num_spins().max(1);
    let mut degree_sum = 0usize;
    let mut max_j = 0.0f64;
    for (_, _, j) in ising.couplings() {
        if j != 0.0 {
            degree_sum += 2;
            max_j = max_j.max(j.abs());
        }
    }
    let max_h = ising.fields().fold(0.0f64, |m, (_, h)| m.max(h.abs()));
    let scale = max_j.max(max_h).max(1e-12);
    let mean_degree = degree_sum as f64 / n as f64;
    (prefactor * scale * mean_degree.sqrt().max(1.0)).max(scale)
}

/// Result of reading one annealing sample back through an embedding.
#[derive(Debug, Clone, PartialEq)]
pub struct UnembeddedRead {
    /// Logical spins after majority vote.
    pub spins: Vec<i8>,
    /// Number of chains whose members disagreed.
    pub broken_chains: usize,
}

/// Majority-vote unembedding of a physical spin configuration.
///
/// Ties (even chains split 50/50) resolve to −1, matching Ocean's
/// deterministic tie-break.
pub fn unembed_majority(embedding: &Embedding, physical_spins: &[i8]) -> UnembeddedRead {
    let mut spins = Vec::with_capacity(embedding.chains.len());
    let mut broken = 0usize;
    for chain in &embedding.chains {
        let up = chain.iter().filter(|&&q| physical_spins[q] > 0).count();
        let down = chain.len() - up;
        if up > 0 && down > 0 {
            broken += 1;
        }
        spins.push(if up > down { 1 } else { -1 });
    }
    UnembeddedRead { spins, broken_chains: broken }
}

/// Fraction of broken chains across many reads.
pub fn chain_break_fraction(reads: &[UnembeddedRead], num_chains: usize) -> f64 {
    if reads.is_empty() || num_chains == 0 {
        return 0.0;
    }
    let total: usize = reads.iter().map(|r| r.broken_chains).sum();
    total as f64 / (reads.len() * num_chains) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_vote_resolves_chains() {
        let e = Embedding { chains: vec![vec![0, 1, 2], vec![3]] };
        let read = unembed_majority(&e, &[1, 1, -1, -1]);
        assert_eq!(read.spins, vec![1, -1]);
        assert_eq!(read.broken_chains, 1);
    }

    #[test]
    fn unanimous_chains_are_not_broken() {
        let e = Embedding { chains: vec![vec![0, 1], vec![2, 3]] };
        let read = unembed_majority(&e, &[-1, -1, 1, 1]);
        assert_eq!(read.spins, vec![-1, 1]);
        assert_eq!(read.broken_chains, 0);
    }

    #[test]
    fn even_tie_breaks_to_minus_one() {
        let e = Embedding { chains: vec![vec![0, 1]] };
        let read = unembed_majority(&e, &[1, -1]);
        assert_eq!(read.spins, vec![-1]);
        assert_eq!(read.broken_chains, 1);
    }

    #[test]
    fn chain_break_fraction_averages_over_reads() {
        let reads = vec![
            UnembeddedRead { spins: vec![1, 1], broken_chains: 1 },
            UnembeddedRead { spins: vec![1, 1], broken_chains: 0 },
        ];
        assert!((chain_break_fraction(&reads, 2) - 0.25).abs() < 1e-12);
        assert_eq!(chain_break_fraction(&[], 2), 0.0);
    }

    #[test]
    fn torque_compensation_scales_with_coupling_and_degree() {
        let mut sparse = IsingModel::new(4);
        sparse.add_coupling(0, 1, 1.0);
        let mut dense = IsingModel::new(4);
        for a in 0..4 {
            for b in a + 1..4 {
                dense.add_coupling(a, b, 1.0);
            }
        }
        let s_sparse = uniform_torque_compensation(&sparse, 1.414);
        let s_dense = uniform_torque_compensation(&dense, 1.414);
        assert!(s_dense > s_sparse, "{s_dense} vs {s_sparse}");
        // Strength is at least the problem scale.
        assert!(s_sparse >= 1.0);

        let mut strong = IsingModel::new(2);
        strong.add_coupling(0, 1, 10.0);
        assert!(uniform_torque_compensation(&strong, 1.414) >= 10.0);
    }
}
