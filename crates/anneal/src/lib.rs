//! Quantum-annealing substrate: hardware graphs (Chimera, Pegasus-like),
//! heuristic minor embedding, chain handling, integrated-control-error
//! noise, path-integral simulated quantum annealing, and a D-Wave-like
//! end-to-end sampler.
//!
//! This crate plays the role of the D-Wave Advantage system plus the Ocean
//! SDK (minorminer, embedding composites) in the paper's experiments.
//!
//! # Example
//!
//! ```
//! use qjo_qubo::Qubo;
//! use qjo_anneal::{hardware, AnnealerSampler};
//!
//! let mut q = Qubo::new(2);
//! q.add_linear(0, -1.0);
//! q.add_linear(1, -1.0);
//! q.add_quadratic(0, 1, 2.0);
//!
//! let sampler = AnnealerSampler::new(hardware::chimera(2));
//! let outcome = sampler.sample_qubo(&q).expect("tiny problem embeds");
//! assert_eq!(outcome.samples.best().unwrap().energy, -1.0);
//! ```

pub mod chain;
pub mod clique;
pub mod embed;
pub mod gauge;
pub mod hardware;
pub mod ice;
pub mod sampler;
pub mod sqa;

pub use clique::pegasus_clique_embedding;
pub use embed::{Embedder, Embedding, EmbeddingError};
pub use ice::IceNoise;
pub use sampler::{AnnealError, AnnealOutcome, AnnealerSampler};
pub use sqa::{anneal_compiled, reverse_anneal_once, SqaConfig, MIN_SWEEPS};
