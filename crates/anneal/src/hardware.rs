//! Quantum-annealer hardware graphs.
//!
//! * [`chimera`] — the exact D-Wave Chimera `C(m)` lattice (degree ≤ 6),
//!   the topology of the D-Wave 2X generation used by Trummer & Koch's MQO
//!   study.
//! * [`pegasus_like`] — a degree-15 lattice with the connectivity profile
//!   of the D-Wave Advantage's Pegasus graph: each qubit has 12 "internal"
//!   couplers to opposite-orientation qubits spanning three adjacent tiles,
//!   1 "odd" coupler to its same-orientation partner, and 2 "external"
//!   couplers extending its own line. We use the documented tile/orientation
//!   structure rather than D-Wave's exact coordinate arithmetic; the
//!   quantities the experiments depend on (qubit count ≈ 5.4k at `m = 26`,
//!   degree 15, quasi-planar locality) match the Advantage system. This
//!   substitution is recorded in DESIGN.md.

use qjo_transpile::Topology;

/// Qubit index inside a tiled lattice: tile `(y, x)`, orientation
/// `u ∈ {0 = vertical, 1 = horizontal}`, offset `k ∈ 0..4`.
fn tile_index(m: usize, y: usize, x: usize, u: usize, k: usize) -> usize {
    ((y * m + x) * 2 + u) * 4 + k
}

/// The exact Chimera `C(m)` graph: an `m × m` grid of `K_{4,4}` unit cells.
///
/// Within a cell the 4 vertical qubits couple to all 4 horizontal qubits;
/// vertical qubits chain to the vertically adjacent cell, horizontal qubits
/// to the horizontally adjacent cell. Interior degree 6; `8m²` qubits.
pub fn chimera(m: usize) -> Topology {
    assert!(m >= 1, "need at least one cell");
    let mut edges = Vec::new();
    for y in 0..m {
        for x in 0..m {
            // Intra-cell complete bipartite couplers.
            for k in 0..4 {
                for j in 0..4 {
                    edges.push((tile_index(m, y, x, 0, k), tile_index(m, y, x, 1, j)));
                }
            }
            // External couplers.
            for k in 0..4 {
                if y + 1 < m {
                    edges.push((tile_index(m, y, x, 0, k), tile_index(m, y + 1, x, 0, k)));
                }
                if x + 1 < m {
                    edges.push((tile_index(m, y, x, 1, k), tile_index(m, y, x + 1, 1, k)));
                }
            }
        }
    }
    Topology::new(8 * m * m, &edges)
}

/// A Pegasus-like degree-15 lattice over an `m × m` grid of 8-qubit tiles
/// (`8m²` qubits).
///
/// Edge classes (mirroring Pegasus's internal / odd / external couplers):
///
/// * *internal*: vertical qubit `(y, x, 0, k)` couples to the horizontal
///   qubits of tiles `(y−1, x)`, `(y, x)`, `(y+1, x)` — 12 couplers in the
///   bulk, reflecting that Pegasus qubits span three unit tiles;
/// * *odd*: `(y, x, u, 2j) ~ (y, x, u, 2j+1)`;
/// * *external*: `(y, x, 0, k) ~ (y+1, x, 0, k)` and
///   `(y, x, 1, k) ~ (y, x+1, 1, k)`.
///
/// Bulk degree: 12 + 1 + 2 = 15, matching the D-Wave Advantage.
pub fn pegasus_like(m: usize) -> Topology {
    assert!(m >= 2, "need at least a 2×2 tile grid");
    let mut edges = Vec::new();
    for y in 0..m {
        for x in 0..m {
            for k in 0..4 {
                // Internal: vertical (y,x,0,k) to horizontal of 3 tiles.
                for dy in [-1isize, 0, 1] {
                    let yy = y as isize + dy;
                    if yy < 0 || yy >= m as isize {
                        continue;
                    }
                    for j in 0..4 {
                        edges
                            .push((tile_index(m, y, x, 0, k), tile_index(m, yy as usize, x, 1, j)));
                    }
                }
                // External.
                if y + 1 < m {
                    edges.push((tile_index(m, y, x, 0, k), tile_index(m, y + 1, x, 0, k)));
                }
                if x + 1 < m {
                    edges.push((tile_index(m, y, x, 1, k), tile_index(m, y, x + 1, 1, k)));
                }
            }
            // Odd couplers.
            for u in 0..2 {
                edges.push((tile_index(m, y, x, u, 0), tile_index(m, y, x, u, 1)));
                edges.push((tile_index(m, y, x, u, 2), tile_index(m, y, x, u, 3)));
            }
        }
    }
    Topology::new(8 * m * m, &edges)
}

/// The D-Wave-Advantage-scale instance: `m = 26` gives 5408 qubits
/// (Advantage advertises ~5000+ working qubits on Pegasus P16).
pub fn advantage_like() -> Topology {
    pegasus_like(26)
}

/// A Zephyr-like degree-20 lattice over an `m × m` grid of 8-qubit tiles
/// (`8m²` qubits) — the connectivity profile of D-Wave's *next* hardware
/// generation (Advantage2), for forward-looking co-design studies.
///
/// Same construction as [`pegasus_like`] with a wider internal span:
/// vertical qubits couple to the horizontal qubits of **five** vertically
/// adjacent tiles (16 internal couplers in the bulk… capped at 4 × 4 = 16;
/// with 1 odd + 2 external + 1 extra odd pair this reaches the bulk degree
/// 20 of Zephyr), and each qubit gains a second odd coupler.
pub fn zephyr_like(m: usize) -> Topology {
    assert!(m >= 3, "need at least a 3×3 tile grid");
    let mut edges = Vec::new();
    for y in 0..m {
        for x in 0..m {
            for k in 0..4 {
                // Internal: vertical (y,x,0,k) to horizontal of 4 tiles
                // (span 4 = Zephyr's doubled-length qubits vs Pegasus' 3).
                for dy in [-1isize, 0, 1, 2] {
                    let yy = y as isize + dy;
                    if yy < 0 || yy >= m as isize {
                        continue;
                    }
                    for j in 0..4 {
                        edges
                            .push((tile_index(m, y, x, 0, k), tile_index(m, yy as usize, x, 1, j)));
                    }
                }
                // External (two hops along the qubit's own line direction).
                if y + 1 < m {
                    edges.push((tile_index(m, y, x, 0, k), tile_index(m, y + 1, x, 0, k)));
                }
                if x + 1 < m {
                    edges.push((tile_index(m, y, x, 1, k), tile_index(m, y, x + 1, 1, k)));
                }
            }
            // Odd couplers: full matching plus the crossed pairs, giving
            // each qubit 2 same-orientation partners.
            for u in 0..2 {
                edges.push((tile_index(m, y, x, u, 0), tile_index(m, y, x, u, 1)));
                edges.push((tile_index(m, y, x, u, 2), tile_index(m, y, x, u, 3)));
                edges.push((tile_index(m, y, x, u, 0), tile_index(m, y, x, u, 2)));
                edges.push((tile_index(m, y, x, u, 1), tile_index(m, y, x, u, 3)));
            }
        }
    }
    Topology::new(8 * m * m, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chimera_counts_and_degrees() {
        let t = chimera(3);
        assert_eq!(t.num_qubits(), 72);
        // Edges: 16 per cell × 9 + external 4 × (6 vertical gaps + 6 horizontal gaps)
        assert_eq!(t.num_edges(), 16 * 9 + 4 * 6 + 4 * 6);
        assert!(t.is_connected());
        let max_deg = (0..72).map(|q| t.degree(q)).max().unwrap();
        assert_eq!(max_deg, 6);
    }

    #[test]
    fn chimera_cell_is_complete_bipartite() {
        let t = chimera(2);
        for k in 0..4 {
            for j in 0..4 {
                assert!(t.has_edge(tile_index(2, 0, 0, 0, k), tile_index(2, 0, 0, 1, j)));
            }
            // No couplers within an orientation (other than none in Chimera).
            for j in 0..4 {
                if k != j {
                    assert!(!t.has_edge(tile_index(2, 0, 0, 0, k), tile_index(2, 0, 0, 0, j)));
                }
            }
        }
    }

    #[test]
    fn pegasus_like_bulk_degree_is_15() {
        let t = pegasus_like(5);
        assert_eq!(t.num_qubits(), 200);
        assert!(t.is_connected());
        // A bulk vertical qubit: tile (2,2).
        let q = tile_index(5, 2, 2, 0, 0);
        assert_eq!(t.degree(q), 15);
        let q = tile_index(5, 2, 2, 1, 3);
        assert_eq!(t.degree(q), 15);
        let max_deg = (0..200).map(|q| t.degree(q)).max().unwrap();
        assert_eq!(max_deg, 15);
    }

    #[test]
    fn pegasus_like_has_odd_couplers() {
        let t = pegasus_like(3);
        assert!(t.has_edge(tile_index(3, 1, 1, 0, 0), tile_index(3, 1, 1, 0, 1)));
        assert!(t.has_edge(tile_index(3, 1, 1, 1, 2), tile_index(3, 1, 1, 1, 3)));
        // But no 0-2 odd coupler.
        assert!(!t.has_edge(tile_index(3, 1, 1, 0, 0), tile_index(3, 1, 1, 0, 2)));
    }

    #[test]
    fn pegasus_is_denser_than_chimera() {
        let p = pegasus_like(4);
        let c = chimera(4);
        assert_eq!(p.num_qubits(), c.num_qubits());
        assert!(p.num_edges() > 2 * c.num_edges());
        // Denser graph, smaller diameter.
        assert!(p.diameter().unwrap() < c.diameter().unwrap());
    }

    #[test]
    fn zephyr_like_bulk_degree_is_20() {
        let t = zephyr_like(6);
        assert_eq!(t.num_qubits(), 288);
        assert!(t.is_connected());
        // Bulk vertical qubit: 16 internal + 2 external + 2 odd = 20.
        let q = tile_index(6, 2, 2, 0, 0);
        assert_eq!(t.degree(q), 20);
        let max_deg = (0..288).map(|q| t.degree(q)).max().unwrap();
        assert_eq!(max_deg, 20);
    }

    #[test]
    fn generation_density_is_monotone() {
        // Chimera < Pegasus-like < Zephyr-like at equal qubit counts.
        let c = chimera(5);
        let p = pegasus_like(5);
        let z = zephyr_like(5);
        assert_eq!(c.num_qubits(), p.num_qubits());
        assert_eq!(p.num_qubits(), z.num_qubits());
        assert!(c.num_edges() < p.num_edges());
        assert!(p.num_edges() < z.num_edges());
        assert!(z.diameter().unwrap() <= p.diameter().unwrap());
    }

    #[test]
    fn advantage_scale_instance() {
        let t = advantage_like();
        assert_eq!(t.num_qubits(), 5408);
        // Spot-check connectivity without the full BFS cost: the topology
        // constructor already computed all-pairs distances.
        assert!(t.is_connected());
    }
}
