//! Spin-reversal transforms (gauge averaging).
//!
//! A standard D-Wave error-mitigation technique: before programming, each
//! qubit is independently assigned a gauge `g_i ∈ {−1, +1}` and the problem
//! is transformed as `h_i ← g_i h_i`, `J_ij ← g_i g_j J_ij`; read spins are
//! transformed back with `s_i ← g_i s_i`. The transformed problem has an
//! identical energy landscape, but analogue asymmetries (ICE biases,
//! coupler leakage) hit different configurations under different gauges —
//! averaging over gauges washes systematic bias out of the sample
//! statistics.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use qjo_qubo::IsingModel;

/// A spin-reversal gauge: one sign per spin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gauge {
    signs: Vec<i8>,
}

impl Gauge {
    /// The identity gauge (no reversal).
    pub fn identity(n: usize) -> Gauge {
        Gauge { signs: vec![1; n] }
    }

    /// A uniformly random gauge.
    pub fn random(n: usize, rng: &mut StdRng) -> Gauge {
        Gauge { signs: (0..n).map(|_| if rng.random_bool(0.5) { 1 } else { -1 }).collect() }
    }

    /// Number of spins.
    pub fn len(&self) -> usize {
        self.signs.len()
    }

    /// True for the empty gauge.
    pub fn is_empty(&self) -> bool {
        self.signs.is_empty()
    }

    /// The sign applied to spin `i`.
    pub fn sign(&self, i: usize) -> i8 {
        self.signs[i]
    }

    /// Applies the gauge to a problem: `h_i ← g_i h_i`, `J_ij ← g_i g_j J_ij`.
    pub fn transform(&self, ising: &IsingModel) -> IsingModel {
        assert_eq!(self.signs.len(), ising.num_spins(), "gauge size mismatch");
        let mut out = IsingModel::new(ising.num_spins());
        for (i, h) in ising.fields() {
            if h != 0.0 {
                out.add_field(i, h * f64::from(self.signs[i]));
            }
        }
        for (i, j, v) in ising.couplings() {
            if v != 0.0 {
                out.add_coupling(i, j, v * f64::from(self.signs[i]) * f64::from(self.signs[j]));
            }
        }
        out
    }

    /// In-place variant of [`Gauge::transform`] on a compiled model — the
    /// read-loop hot path, which would otherwise rebuild a coupling map
    /// per read only to flatten it again.
    pub fn apply_compiled(&self, ising: &mut qjo_qubo::CompiledIsing) {
        ising.apply_gauge(&self.signs);
    }

    /// Maps a spin configuration of the transformed problem back to the
    /// original problem's frame.
    pub fn untransform_spins(&self, spins: &[i8]) -> Vec<i8> {
        assert_eq!(self.signs.len(), spins.len(), "gauge size mismatch");
        spins.iter().zip(&self.signs).map(|(&s, &g)| s * g).collect()
    }
}

/// Generates `count` gauges: the identity first, then random ones.
pub fn gauge_set(n: usize, count: usize, seed: u64) -> Vec<Gauge> {
    assert!(count >= 1, "need at least one gauge");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = vec![Gauge::identity(n)];
    while out.len() < count {
        out.push(Gauge::random(n, &mut rng));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> IsingModel {
        let mut m = IsingModel::new(3);
        m.add_field(0, 0.7);
        m.add_field(2, -0.3);
        m.add_coupling(0, 1, 0.5);
        m.add_coupling(1, 2, -0.9);
        m
    }

    #[test]
    fn gauge_preserves_the_energy_landscape() {
        let m = toy();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let g = Gauge::random(3, &mut rng);
            let t = g.transform(&m);
            for bits in 0..8u8 {
                let s: Vec<i8> = (0..3).map(|i| if bits >> i & 1 == 1 { 1 } else { -1 }).collect();
                // Energy of s under the original = energy of the gauged
                // configuration under the transformed problem.
                let gauged: Vec<i8> = s.iter().zip(0..3).map(|(&v, i)| v * g.sign(i)).collect();
                assert!((m.energy(&s) - t.energy(&gauged)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn untransform_inverts_the_gauge() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = Gauge::random(5, &mut rng);
        let spins = vec![1, -1, 1, 1, -1];
        // Transform forward (multiply) then back: identity.
        let forward: Vec<i8> = spins.iter().zip(0..5).map(|(&s, i)| s * g.sign(i)).collect();
        assert_eq!(g.untransform_spins(&forward), spins);
    }

    #[test]
    fn identity_gauge_is_a_no_op() {
        let m = toy();
        let g = Gauge::identity(3);
        let t = g.transform(&m);
        assert_eq!(t.field(0), m.field(0));
        assert_eq!(t.coupling(1, 2), m.coupling(1, 2));
        assert_eq!(g.untransform_spins(&[1, -1, 1]), vec![1, -1, 1]);
    }

    #[test]
    fn ground_state_maps_through_the_gauge() {
        let m = toy();
        let mut rng = StdRng::seed_from_u64(9);
        let g = Gauge::random(3, &mut rng);
        let t = g.transform(&m);
        // Brute-force both ground states; they must map onto each other.
        let ground = |model: &IsingModel| -> (f64, Vec<i8>) {
            let mut best = (f64::INFINITY, Vec::new());
            for bits in 0..8u8 {
                let s: Vec<i8> = (0..3).map(|i| if bits >> i & 1 == 1 { 1 } else { -1 }).collect();
                let e = model.energy(&s);
                if e < best.0 {
                    best = (e, s);
                }
            }
            best
        };
        let (e_orig, _) = ground(&m);
        let (e_gauged, s_gauged) = ground(&t);
        assert!((e_orig - e_gauged).abs() < 1e-12, "spectra differ");
        assert!((m.energy(&g.untransform_spins(&s_gauged)) - e_orig).abs() < 1e-12);
    }

    #[test]
    fn gauge_set_leads_with_identity() {
        let gs = gauge_set(4, 3, 0);
        assert_eq!(gs.len(), 3);
        assert_eq!(gs[0], Gauge::identity(4));
        assert_ne!(gs[1], gs[2], "random gauges should differ");
    }
}
