//! Quadratic unconstrained binary optimisation (QUBO) models and solvers.
//!
//! This crate is the substrate every quantum backend in the `qjo` workspace
//! consumes: the join-ordering formulation in `qjo-core` lowers to a [`Qubo`],
//! which is then either
//!
//! * turned into an [`IsingModel`] and handed to the QAOA machinery in
//!   `qjo-gatesim`,
//! * minor-embedded and annealed by `qjo-anneal`, or
//! * solved classically by one of the solvers in [`solve`] (exact
//!   enumeration, simulated annealing, tabu search) to obtain ground truth
//!   and classical baselines.
//!
//! # Conventions
//!
//! A QUBO over binary variables `x ∈ {0,1}^n` is the polynomial
//!
//! ```text
//! f(x) = offset + Σ_i  c_ii x_i  +  Σ_{i<j} c_ij x_i x_j
//! ```
//!
//! Quadratic coefficients are stored once per unordered pair `{i, j}` with
//! `i < j`. The equivalent Ising model uses spins `s ∈ {−1,+1}^n` with the
//! mapping `x_i = (1 + s_i) / 2`.
//!
//! # Example
//!
//! ```
//! use qjo_qubo::{Qubo, solve::ExactSolver};
//!
//! // min  -x0 - x1 + 2 x0 x1   (a 2-variable "pick exactly one" gadget)
//! let mut q = Qubo::new(2);
//! q.add_linear(0, -1.0);
//! q.add_linear(1, -1.0);
//! q.add_quadratic(0, 1, 2.0);
//!
//! let best = ExactSolver::new().solve(&q).expect("tiny model");
//! assert_eq!(best.energy, -1.0);
//! assert_ne!(best.assignment[0], best.assignment[1]);
//! ```

pub mod error;
pub mod io;
pub mod ising;
pub mod model;
pub mod preprocess;
pub mod sample;
pub mod shots;
pub mod solve;

pub use error::QuboError;
pub use ising::{CompiledIsing, IsingModel, IsingTerm};
pub use model::{CompiledQubo, Qubo};
pub use preprocess::{fix_variables, Preprocessed};
pub use sample::{Sample, SampleSet};
pub use shots::ShotBuffer;
