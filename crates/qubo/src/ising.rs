//! Spin-glass (Ising) form of a QUBO.
//!
//! Both QPU families in the paper natively minimise an Ising Hamiltonian
//!
//! ```text
//! H(s) = offset + Σ_i h_i s_i + Σ_{i<j} J_ij s_i s_j ,    s_i ∈ {−1, +1}.
//! ```
//!
//! The gate-based backend turns `h`/`J` into RZ / RZZ rotations of the QAOA
//! cost operator; the annealing backend programs them as qubit biases and
//! coupler strengths.

use std::collections::BTreeMap;

use crate::model::Qubo;

/// An Ising model over spins `s ∈ {−1,+1}^n`.
#[derive(Debug, Clone, PartialEq)]
pub struct IsingModel {
    h: Vec<f64>,
    j: BTreeMap<(u32, u32), f64>,
    offset: f64,
}

impl IsingModel {
    /// Builds an Ising model from raw parts. Keys of `j` must satisfy `i < j`.
    pub fn from_parts(h: Vec<f64>, j: BTreeMap<(u32, u32), f64>, offset: f64) -> Self {
        debug_assert!(j.keys().all(|&(a, b)| a < b && (b as usize) < h.len()));
        IsingModel { h, j, offset }
    }

    /// Creates a zero model over `n` spins.
    pub fn new(n: usize) -> Self {
        IsingModel { h: vec![0.0; n], j: BTreeMap::new(), offset: 0.0 }
    }

    /// Number of spins.
    pub fn num_spins(&self) -> usize {
        self.h.len()
    }

    /// Constant term.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Field (linear bias) on spin `i`.
    pub fn field(&self, i: usize) -> f64 {
        self.h[i]
    }

    /// Coupling between spins `i` and `j` (0.0 when absent).
    pub fn coupling(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        self.j.get(&(i.min(j) as u32, i.max(j) as u32)).copied().unwrap_or(0.0)
    }

    /// Adds `value` to the field on spin `i`.
    pub fn add_field(&mut self, i: usize, value: f64) {
        self.h[i] += value;
    }

    /// Adds `value` to the coupling of pair `{i, j}` (`i != j`).
    pub fn add_coupling(&mut self, i: usize, j: usize, value: f64) {
        assert_ne!(i, j, "self-coupling is not representable; fold into the offset");
        let key = (i.min(j) as u32, i.max(j) as u32);
        *self.j.entry(key).or_insert(0.0) += value;
    }

    /// Iterates couplings as `(i, j, J_ij)` with `i < j`.
    pub fn couplings(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.j.iter().map(|(&(i, j), &v)| (i as usize, j as usize, v))
    }

    /// Iterates fields as `(i, h_i)`, including zeros.
    pub fn fields(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.h.iter().copied().enumerate()
    }

    /// Number of non-zero couplings.
    pub fn num_couplings(&self) -> usize {
        self.j.values().filter(|v| **v != 0.0).count()
    }

    /// Energy of a spin configuration.
    pub fn energy(&self, s: &[i8]) -> f64 {
        debug_assert_eq!(s.len(), self.h.len());
        let mut e = self.offset;
        for (i, &hi) in self.h.iter().enumerate() {
            e += hi * f64::from(s[i]);
        }
        for (&(i, j), &jij) in &self.j {
            e += jij * f64::from(s[i as usize]) * f64::from(s[j as usize]);
        }
        e
    }

    /// Largest absolute field or coupling.
    pub fn max_abs_coefficient(&self) -> f64 {
        let hmax = self.h.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        let jmax = self.j.values().fold(0.0_f64, |m, v| m.max(v.abs()));
        hmax.max(jmax)
    }

    /// Converts back to QUBO form with `x_i = (1 + s_i) / 2`.
    ///
    /// Exact inverse of [`Qubo::to_ising`] up to floating-point rounding.
    pub fn to_qubo(&self) -> Qubo {
        let n = self.h.len();
        let mut q = Qubo::new(n);
        let mut offset = self.offset;
        for (i, &hi) in self.h.iter().enumerate() {
            // h s = h (2x - 1)
            q.add_linear(i, 2.0 * hi);
            offset -= hi;
        }
        for (&(i, j), &jij) in &self.j {
            // J s_i s_j = J (2x_i - 1)(2x_j - 1)
            q.add_quadratic(i as usize, j as usize, 4.0 * jij);
            q.add_linear(i as usize, -2.0 * jij);
            q.add_linear(j as usize, -2.0 * jij);
            offset += jij;
        }
        q.add_offset(offset);
        q
    }

    /// Rescales all fields and couplings by `factor` (offset untouched).
    ///
    /// Annealers have a bounded programmable range; problems are normalised
    /// to it before embedding.
    pub fn scale(&mut self, factor: f64) {
        for h in &mut self.h {
            *h *= factor;
        }
        for v in self.j.values_mut() {
            *v *= factor;
        }
    }
}

/// Converts a binary assignment to spins (`true → +1`).
pub fn bits_to_spins(x: &[bool]) -> Vec<i8> {
    x.iter().map(|&b| if b { 1 } else { -1 }).collect()
}

/// Converts spins to a binary assignment (`+1 → true`).
pub fn spins_to_bits(s: &[i8]) -> Vec<bool> {
    s.iter().map(|&v| v > 0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubo_ising_qubo_round_trip() {
        let mut q = Qubo::new(3);
        q.add_offset(0.5);
        q.add_linear(0, 1.5);
        q.add_linear(2, -2.0);
        q.add_quadratic(0, 1, 3.0);
        q.add_quadratic(1, 2, -1.0);

        let back = q.to_ising().to_qubo();
        for bits in 0..8u32 {
            let x: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let a = q.energy(&x).unwrap();
            let b = back.energy(&x).unwrap();
            assert!((a - b).abs() < 1e-12, "x={x:?}: {a} vs {b}");
        }
    }

    #[test]
    fn energy_of_uniform_spins() {
        let mut m = IsingModel::new(2);
        m.add_field(0, 1.0);
        m.add_field(1, -0.5);
        m.add_coupling(0, 1, 2.0);
        assert_eq!(m.energy(&[1, 1]), 1.0 - 0.5 + 2.0);
        assert_eq!(m.energy(&[-1, 1]), -1.0 - 0.5 - 2.0);
    }

    #[test]
    fn coupling_accumulates_symmetrically() {
        let mut m = IsingModel::new(3);
        m.add_coupling(2, 0, 1.0);
        m.add_coupling(0, 2, 0.5);
        assert_eq!(m.coupling(0, 2), 1.5);
        assert_eq!(m.coupling(2, 0), 1.5);
        assert_eq!(m.num_couplings(), 1);
    }

    #[test]
    #[should_panic(expected = "self-coupling")]
    fn self_coupling_panics() {
        IsingModel::new(2).add_coupling(1, 1, 1.0);
    }

    #[test]
    fn scale_rescales_h_and_j_only() {
        let mut m = IsingModel::new(2);
        m.add_field(0, 2.0);
        m.add_coupling(0, 1, -4.0);
        let mut scaled = m.clone();
        scaled.scale(0.25);
        assert_eq!(scaled.field(0), 0.5);
        assert_eq!(scaled.coupling(0, 1), -1.0);
        assert_eq!(scaled.offset(), m.offset());
    }

    #[test]
    fn spin_bit_conversions_invert() {
        let x = vec![true, false, true, true];
        assert_eq!(spins_to_bits(&bits_to_spins(&x)), x);
        assert_eq!(bits_to_spins(&x), vec![1, -1, 1, 1]);
    }

    #[test]
    fn max_abs_coefficient_covers_fields_and_couplings() {
        let mut m = IsingModel::new(2);
        m.add_field(1, -3.0);
        m.add_coupling(0, 1, 2.0);
        assert_eq!(m.max_abs_coefficient(), 3.0);
    }
}
