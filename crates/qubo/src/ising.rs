//! Spin-glass (Ising) form of a QUBO.
//!
//! Both QPU families in the paper natively minimise an Ising Hamiltonian
//!
//! ```text
//! H(s) = offset + Σ_i h_i s_i + Σ_{i<j} J_ij s_i s_j ,    s_i ∈ {−1, +1}.
//! ```
//!
//! The gate-based backend turns `h`/`J` into RZ / RZZ rotations of the QAOA
//! cost operator; the annealing backend programs them as qubit biases and
//! coupler strengths.

use std::collections::BTreeMap;

use crate::model::Qubo;

/// An Ising model over spins `s ∈ {−1,+1}^n`.
#[derive(Debug, Clone, PartialEq)]
pub struct IsingModel {
    h: Vec<f64>,
    j: BTreeMap<(u32, u32), f64>,
    offset: f64,
}

impl IsingModel {
    /// Builds an Ising model from raw parts. Keys of `j` must satisfy `i < j`.
    pub fn from_parts(h: Vec<f64>, j: BTreeMap<(u32, u32), f64>, offset: f64) -> Self {
        debug_assert!(j.keys().all(|&(a, b)| a < b && (b as usize) < h.len()));
        IsingModel { h, j, offset }
    }

    /// Creates a zero model over `n` spins.
    pub fn new(n: usize) -> Self {
        IsingModel { h: vec![0.0; n], j: BTreeMap::new(), offset: 0.0 }
    }

    /// Number of spins.
    pub fn num_spins(&self) -> usize {
        self.h.len()
    }

    /// Constant term.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Field (linear bias) on spin `i`.
    pub fn field(&self, i: usize) -> f64 {
        self.h[i]
    }

    /// Coupling between spins `i` and `j` (0.0 when absent).
    pub fn coupling(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        self.j.get(&(i.min(j) as u32, i.max(j) as u32)).copied().unwrap_or(0.0)
    }

    /// Adds `value` to the field on spin `i`.
    pub fn add_field(&mut self, i: usize, value: f64) {
        self.h[i] += value;
    }

    /// Adds `value` to the coupling of pair `{i, j}` (`i != j`).
    pub fn add_coupling(&mut self, i: usize, j: usize, value: f64) {
        assert_ne!(i, j, "self-coupling is not representable; fold into the offset");
        let key = (i.min(j) as u32, i.max(j) as u32);
        *self.j.entry(key).or_insert(0.0) += value;
    }

    /// Iterates couplings as `(i, j, J_ij)` with `i < j`.
    pub fn couplings(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.j.iter().map(|(&(i, j), &v)| (i as usize, j as usize, v))
    }

    /// Iterates fields as `(i, h_i)`, including zeros.
    pub fn fields(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.h.iter().copied().enumerate()
    }

    /// Number of non-zero couplings.
    pub fn num_couplings(&self) -> usize {
        self.j.values().filter(|v| **v != 0.0).count()
    }

    /// Energy of a spin configuration.
    pub fn energy(&self, s: &[i8]) -> f64 {
        debug_assert_eq!(s.len(), self.h.len());
        let mut e = self.offset;
        for (i, &hi) in self.h.iter().enumerate() {
            e += hi * f64::from(s[i]);
        }
        for (&(i, j), &jij) in &self.j {
            e += jij * f64::from(s[i as usize]) * f64::from(s[j as usize]);
        }
        e
    }

    /// Largest absolute field or coupling.
    pub fn max_abs_coefficient(&self) -> f64 {
        let hmax = self.h.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        let jmax = self.j.values().fold(0.0_f64, |m, v| m.max(v.abs()));
        hmax.max(jmax)
    }

    /// Converts back to QUBO form with `x_i = (1 + s_i) / 2`.
    ///
    /// Exact inverse of [`Qubo::to_ising`] up to floating-point rounding.
    pub fn to_qubo(&self) -> Qubo {
        let n = self.h.len();
        let mut q = Qubo::new(n);
        let mut offset = self.offset;
        for (i, &hi) in self.h.iter().enumerate() {
            // h s = h (2x - 1)
            q.add_linear(i, 2.0 * hi);
            offset -= hi;
        }
        for (&(i, j), &jij) in &self.j {
            // J s_i s_j = J (2x_i - 1)(2x_j - 1)
            q.add_quadratic(i as usize, j as usize, 4.0 * jij);
            q.add_linear(i as usize, -2.0 * jij);
            q.add_linear(j as usize, -2.0 * jij);
            offset += jij;
        }
        q.add_offset(offset);
        q
    }

    /// Rescales all fields and couplings by `factor` (offset untouched).
    ///
    /// Annealers have a bounded programmable range; problems are normalised
    /// to it before embedding.
    pub fn scale(&mut self, factor: f64) {
        for h in &mut self.h {
            *h *= factor;
        }
        for v in self.j.values_mut() {
            *v *= factor;
        }
    }

    /// Compiles into adjacency (CSR) form for fast incremental solvers.
    ///
    /// Mirrors [`Qubo::compile`]: the coupling map is flattened into
    /// row-start / column / weight arrays so that sweeping solvers (SQA,
    /// parallel tempering) can walk a spin's neighbourhood without hashing
    /// and evaluate flip costs in O(degree).
    pub fn compile(&self) -> CompiledIsing {
        let n = self.h.len();
        let mut neighbor_counts = vec![0usize; n];
        for (&(i, j), &v) in &self.j {
            if v != 0.0 {
                neighbor_counts[i as usize] += 1;
                neighbor_counts[j as usize] += 1;
            }
        }
        let mut row_starts = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        row_starts.push(0);
        for count in &neighbor_counts {
            acc += count;
            row_starts.push(acc);
        }
        let mut cols = vec![0u32; acc];
        let mut weights = vec![0.0f64; acc];
        let mut cursor = row_starts[..n].to_vec();
        for (&(i, j), &v) in &self.j {
            if v != 0.0 {
                cols[cursor[i as usize]] = j;
                weights[cursor[i as usize]] = v;
                cursor[i as usize] += 1;
                cols[cursor[j as usize]] = i;
                weights[cursor[j as usize]] = v;
                cursor[j as usize] += 1;
            }
        }
        CompiledIsing {
            num_spins: n,
            offset: self.offset,
            fields: self.h.clone(),
            row_starts,
            cols,
            weights,
        }
    }
}

/// One coefficient of a [`CompiledIsing`], as visited by
/// [`CompiledIsing::perturb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsingTerm {
    /// The field `h_i`.
    Field(usize),
    /// The coupling `J_ij` with `i < j`.
    Coupling(usize, usize),
}

/// An [`IsingModel`] flattened into CSR adjacency form.
///
/// Supports the O(degree) primitives that dominate annealing inner loops:
/// the *local field* `Σ_j J_ij s_j` seen by one spin, and the exact energy
/// change of flipping it. The BTreeMap coupling store of [`IsingModel`] is
/// great for accumulation but pays a pointer chase per neighbour; the CSR
/// form is built once per anneal and then read millions of times.
#[derive(Debug, Clone)]
pub struct CompiledIsing {
    num_spins: usize,
    offset: f64,
    fields: Vec<f64>,
    row_starts: Vec<usize>,
    cols: Vec<u32>,
    weights: Vec<f64>,
}

impl CompiledIsing {
    /// Number of spins.
    pub fn num_spins(&self) -> usize {
        self.num_spins
    }

    /// Constant term.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Field (linear bias) on spin `i`.
    pub fn field(&self, i: usize) -> f64 {
        self.fields[i]
    }

    /// Neighbours of spin `i` with their coupling strengths.
    pub fn neighbors(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let range = self.row_starts[i]..self.row_starts[i + 1];
        self.cols[range.clone()].iter().zip(&self.weights[range]).map(|(&c, &w)| (c as usize, w))
    }

    /// Coupling contribution `Σ_j J_ij s_j` felt by spin `i` (field excluded).
    pub fn local_field(&self, s: &[i8], i: usize) -> f64 {
        let mut acc = 0.0;
        for (j, w) in self.neighbors(i) {
            acc += w * f64::from(s[j]);
        }
        acc
    }

    /// Energy change from flipping spin `i` in configuration `s`.
    ///
    /// `ΔE = −2 s_i (h_i + Σ_j J_ij s_j)`, the Ising analogue of
    /// [`crate::CompiledQubo::flip_gain`].
    pub fn flip_delta(&self, s: &[i8], i: usize) -> f64 {
        -2.0 * f64::from(s[i]) * (self.fields[i] + self.local_field(s, i))
    }

    /// Applies a spin-reversal gauge in place: `h_i ← g_i·h_i`,
    /// `J_ij ← g_i·g_j·J_ij`. Signs must be ±1; the transform is exact
    /// (multiplying by ±1 never rounds) and keeps the CSR mirror entries
    /// equal because the product is symmetric in `i` and `j`.
    pub fn apply_gauge(&mut self, signs: &[i8]) {
        assert_eq!(signs.len(), self.num_spins, "gauge size mismatch");
        for (h, &g) in self.fields.iter_mut().zip(signs) {
            *h *= f64::from(g);
        }
        for i in 0..self.num_spins {
            let gi = f64::from(signs[i]);
            let range = self.row_starts[i]..self.row_starts[i + 1];
            for (w, &j) in self.weights[range.clone()].iter_mut().zip(&self.cols[range]) {
                *w *= gi * f64::from(signs[j as usize]);
            }
        }
    }

    /// Rewrites every coefficient in place through `f`, visiting fields in
    /// index order and then couplings in `(i < j)` lexicographic order —
    /// the same order [`IsingModel::couplings`] iterates, so an `f` that
    /// draws random numbers consumes its stream identically to a rebuild
    /// of the uncompiled model. Each coupling is visited once; the CSR
    /// mirror entry receives the same rewritten value.
    pub fn perturb(&mut self, mut f: impl FnMut(IsingTerm, f64) -> f64) {
        for (i, h) in self.fields.iter_mut().enumerate() {
            *h = f(IsingTerm::Field(i), *h);
        }
        for i in 0..self.num_spins {
            let row = self.row_starts[i]..self.row_starts[i + 1];
            // Columns in a row are sorted ascending, so the `j > i`
            // entries form the row's suffix.
            let upper = self.cols[row.clone()].partition_point(|&j| (j as usize) <= i);
            for e in row.start + upper..row.end {
                let j = self.cols[e] as usize;
                let w = f(IsingTerm::Coupling(i, j), self.weights[e]);
                self.weights[e] = w;
                let jrow = self.row_starts[j]..self.row_starts[j + 1];
                let back = jrow.start
                    + self.cols[jrow]
                        .binary_search(&(i as u32))
                        .expect("CSR adjacency is symmetric");
                self.weights[back] = w;
            }
        }
    }

    /// Full energy of a spin configuration (O(n + m)).
    pub fn energy(&self, s: &[i8]) -> f64 {
        debug_assert_eq!(s.len(), self.num_spins);
        let mut e = self.offset;
        for (i, &hi) in self.fields.iter().enumerate() {
            e += hi * f64::from(s[i]);
        }
        // Each edge is stored twice in CSR; count pairs once via j > i.
        for i in 0..self.num_spins {
            let si = f64::from(s[i]);
            for (j, w) in self.neighbors(i) {
                if j > i {
                    e += w * si * f64::from(s[j]);
                }
            }
        }
        e
    }
}

/// Converts a binary assignment to spins (`true → +1`).
pub fn bits_to_spins(x: &[bool]) -> Vec<i8> {
    x.iter().map(|&b| if b { 1 } else { -1 }).collect()
}

/// Converts spins to a binary assignment (`+1 → true`).
pub fn spins_to_bits(s: &[i8]) -> Vec<bool> {
    s.iter().map(|&v| v > 0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubo_ising_qubo_round_trip() {
        let mut q = Qubo::new(3);
        q.add_offset(0.5);
        q.add_linear(0, 1.5);
        q.add_linear(2, -2.0);
        q.add_quadratic(0, 1, 3.0);
        q.add_quadratic(1, 2, -1.0);

        let back = q.to_ising().to_qubo();
        for bits in 0..8u32 {
            let x: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let a = q.energy(&x).unwrap();
            let b = back.energy(&x).unwrap();
            assert!((a - b).abs() < 1e-12, "x={x:?}: {a} vs {b}");
        }
    }

    #[test]
    fn energy_of_uniform_spins() {
        let mut m = IsingModel::new(2);
        m.add_field(0, 1.0);
        m.add_field(1, -0.5);
        m.add_coupling(0, 1, 2.0);
        assert_eq!(m.energy(&[1, 1]), 1.0 - 0.5 + 2.0);
        assert_eq!(m.energy(&[-1, 1]), -1.0 - 0.5 - 2.0);
    }

    #[test]
    fn coupling_accumulates_symmetrically() {
        let mut m = IsingModel::new(3);
        m.add_coupling(2, 0, 1.0);
        m.add_coupling(0, 2, 0.5);
        assert_eq!(m.coupling(0, 2), 1.5);
        assert_eq!(m.coupling(2, 0), 1.5);
        assert_eq!(m.num_couplings(), 1);
    }

    #[test]
    #[should_panic(expected = "self-coupling")]
    fn self_coupling_panics() {
        IsingModel::new(2).add_coupling(1, 1, 1.0);
    }

    #[test]
    fn scale_rescales_h_and_j_only() {
        let mut m = IsingModel::new(2);
        m.add_field(0, 2.0);
        m.add_coupling(0, 1, -4.0);
        let mut scaled = m.clone();
        scaled.scale(0.25);
        assert_eq!(scaled.field(0), 0.5);
        assert_eq!(scaled.coupling(0, 1), -1.0);
        assert_eq!(scaled.offset(), m.offset());
    }

    #[test]
    fn spin_bit_conversions_invert() {
        let x = vec![true, false, true, true];
        assert_eq!(spins_to_bits(&bits_to_spins(&x)), x);
        assert_eq!(bits_to_spins(&x), vec![1, -1, 1, 1]);
    }

    #[test]
    fn max_abs_coefficient_covers_fields_and_couplings() {
        let mut m = IsingModel::new(2);
        m.add_field(1, -3.0);
        m.add_coupling(0, 1, 2.0);
        assert_eq!(m.max_abs_coefficient(), 3.0);
    }

    fn compiled_toy() -> IsingModel {
        let mut m = IsingModel::new(4);
        m.add_field(0, 0.75);
        m.add_field(2, -1.25);
        m.add_coupling(0, 1, 1.5);
        m.add_coupling(1, 2, -0.5);
        m.add_coupling(0, 3, 2.0);
        m.add_coupling(2, 3, 0.25);
        m
    }

    #[test]
    fn compiled_energy_matches_model_energy() {
        let m = compiled_toy();
        let c = m.compile();
        for bits in 0..16u32 {
            let s: Vec<i8> = (0..4).map(|i| if bits >> i & 1 == 1 { 1 } else { -1 }).collect();
            let a = m.energy(&s);
            let b = c.energy(&s);
            assert!((a - b).abs() < 1e-12, "s={s:?}: {a} vs {b}");
        }
    }

    #[test]
    fn compiled_flip_delta_matches_energy_difference() {
        let m = compiled_toy();
        let c = m.compile();
        for bits in 0..16u32 {
            let s: Vec<i8> = (0..4).map(|i| if bits >> i & 1 == 1 { 1 } else { -1 }).collect();
            for i in 0..4 {
                let mut t = s.clone();
                t[i] = -t[i];
                let expected = c.energy(&t) - c.energy(&s);
                let got = c.flip_delta(&s, i);
                assert!((got - expected).abs() < 1e-12, "i={i} s={s:?}: {got} vs {expected}");
            }
        }
    }

    #[test]
    fn compiled_neighbors_skip_cancelled_couplings() {
        let mut m = IsingModel::new(3);
        m.add_coupling(0, 1, 1.0);
        m.add_coupling(0, 1, -1.0); // cancels to exact zero
        m.add_coupling(1, 2, 0.5);
        let c = m.compile();
        assert_eq!(c.neighbors(0).count(), 0);
        assert_eq!(c.neighbors(1).collect::<Vec<_>>(), vec![(2, 0.5)]);
        assert_eq!(c.num_spins(), 3);
    }

    fn glassy_model() -> IsingModel {
        let mut m = IsingModel::new(5);
        m.add_field(0, 0.75);
        m.add_field(3, -1.25);
        m.add_coupling(0, 1, 1.0);
        m.add_coupling(1, 2, -0.5);
        m.add_coupling(0, 4, 0.25);
        m.add_coupling(2, 4, 2.0);
        m.add_coupling(3, 4, -1.5);
        m
    }

    fn all_spin_configs(n: usize) -> impl Iterator<Item = Vec<i8>> {
        (0..1u32 << n)
            .map(move |bits| (0..n).map(|i| if bits >> i & 1 == 1 { 1 } else { -1 }).collect())
    }

    #[test]
    fn apply_gauge_matches_flipping_the_spins() {
        // E_gauged(s) must equal E(g ⊙ s): gauging the coefficients is the
        // same change of variables as flipping the spins.
        let model = glassy_model();
        let signs = [1i8, -1, -1, 1, -1];
        let mut gauged = model.compile();
        gauged.apply_gauge(&signs);
        let plain = model.compile();
        for s in all_spin_configs(5) {
            let flipped: Vec<i8> = s.iter().zip(signs).map(|(&v, g)| v * g).collect();
            assert_eq!(gauged.energy(&s), plain.energy(&flipped));
        }
    }

    #[test]
    fn perturb_visits_couplings_once_in_model_order_and_mirrors_values() {
        let model = glassy_model();
        let mut compiled = model.compile();
        let mut visited = Vec::new();
        compiled.perturb(|term, v| match term {
            IsingTerm::Field(i) => {
                assert_eq!(v, model.field(i));
                v
            }
            IsingTerm::Coupling(i, j) => {
                assert!(i < j, "couplings visit with i < j, got ({i},{j})");
                assert_eq!(v, model.coupling(i, j));
                visited.push((i, j));
                v + 1.0
            }
        });
        let expected: Vec<(usize, usize)> = model.couplings().map(|(i, j, _)| (i, j)).collect();
        assert_eq!(visited, expected, "one visit per coupling, lexicographic");
        // Both CSR mirror entries carry the rewritten value.
        for (i, j, v) in model.couplings() {
            let forward = compiled.neighbors(i).find(|&(c, _)| c == j).expect("entry").1;
            let back = compiled.neighbors(j).find(|&(c, _)| c == i).expect("mirror").1;
            assert_eq!(forward, v + 1.0);
            assert_eq!(back, v + 1.0);
        }
    }
}
