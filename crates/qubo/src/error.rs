//! Error type shared by QUBO construction and solving.

use std::fmt;

/// Errors produced while building or solving QUBO / Ising models.
#[derive(Debug, Clone, PartialEq)]
pub enum QuboError {
    /// A variable index was at or beyond the declared variable count.
    VariableOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of variables in the model.
        num_vars: usize,
    },
    /// A quadratic term referenced the same variable twice; diagonal terms
    /// must be added as linear coefficients (`x_i^2 = x_i` for binaries).
    DiagonalQuadratic {
        /// The repeated index.
        index: usize,
    },
    /// The model is too large for the requested solver.
    TooLarge {
        /// Number of variables in the model.
        num_vars: usize,
        /// Maximum the solver supports.
        max_vars: usize,
    },
    /// An assignment of the wrong length was supplied for evaluation.
    AssignmentLength {
        /// Supplied length.
        got: usize,
        /// Expected length (the variable count).
        expected: usize,
    },
    /// A coefficient was not finite (NaN or infinite).
    NonFiniteCoefficient {
        /// Row index of the coefficient.
        i: usize,
        /// Column index of the coefficient.
        j: usize,
    },
    /// A cooling-schedule parameter is outside its documented domain
    /// (geometric cooling needs `t0 > 0` and `ratio` in `(0, 1)`).
    InvalidSchedule {
        /// Initial temperature as supplied.
        t0: f64,
        /// Decay ratio as supplied.
        ratio: f64,
    },
}

impl fmt::Display for QuboError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuboError::VariableOutOfRange { index, num_vars } => {
                write!(f, "variable index {index} out of range for {num_vars} variables")
            }
            QuboError::DiagonalQuadratic { index } => {
                write!(f, "quadratic term ({index}, {index}) is diagonal; add it as a linear term")
            }
            QuboError::TooLarge { num_vars, max_vars } => {
                write!(f, "model with {num_vars} variables exceeds solver limit of {max_vars}")
            }
            QuboError::AssignmentLength { got, expected } => {
                write!(f, "assignment has length {got}, expected {expected}")
            }
            QuboError::NonFiniteCoefficient { i, j } => {
                write!(f, "coefficient at ({i}, {j}) is not finite")
            }
            QuboError::InvalidSchedule { t0, ratio } => {
                write!(
                    f,
                    "invalid geometric cooling schedule: need t0 > 0 and ratio in (0, 1), \
                     got t0 = {t0}, ratio = {ratio}"
                )
            }
        }
    }
}

impl std::error::Error for QuboError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_indices() {
        let e = QuboError::VariableOutOfRange { index: 7, num_vars: 4 };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('4'));

        let e = QuboError::DiagonalQuadratic { index: 3 };
        assert!(e.to_string().contains('3'));

        let e = QuboError::TooLarge { num_vars: 40, max_vars: 32 };
        assert!(e.to_string().contains("40"));

        let e = QuboError::AssignmentLength { got: 2, expected: 5 };
        assert!(e.to_string().contains('2') && e.to_string().contains('5'));

        let e = QuboError::NonFiniteCoefficient { i: 1, j: 2 };
        assert!(e.to_string().contains("not finite"));

        let e = QuboError::InvalidSchedule { t0: -1.0, ratio: 1.5 };
        assert!(e.to_string().contains("-1") && e.to_string().contains("1.5"));
    }
}
