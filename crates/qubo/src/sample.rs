//! Sample sets: what a (real or simulated) QPU returns.
//!
//! Both QAOA shot sampling and annealing reads produce a multiset of binary
//! assignments with energies. [`SampleSet`] aggregates duplicates, orders by
//! energy, and exposes the statistics the paper reports (fractions of shots
//! satisfying a predicate, best sample, ...).

use std::collections::HashMap;

use crate::shots::{unpack_row, ShotBuffer};

/// One distinct assignment observed while sampling, with its multiplicity.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The binary variable assignment.
    pub assignment: Vec<bool>,
    /// Model energy of the assignment.
    pub energy: f64,
    /// How many shots/reads produced this assignment.
    pub occurrences: u32,
}

/// An aggregated, energy-sorted collection of samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SampleSet {
    samples: Vec<Sample>,
    total_reads: u64,
}

impl SampleSet {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        SampleSet::default()
    }

    /// Builds a sample set from raw (possibly duplicated) reads, aggregating
    /// identical assignments and sorting ascending by energy.
    ///
    /// `energy_of` is called once per distinct assignment.
    pub fn from_reads<F>(reads: Vec<Vec<bool>>, mut energy_of: F) -> Self
    where
        F: FnMut(&[bool]) -> f64,
    {
        let mut counts: HashMap<Vec<bool>, u32> = HashMap::new();
        for read in reads {
            *counts.entry(read).or_insert(0) += 1;
        }
        let samples = counts
            .into_iter()
            .map(|(assignment, occurrences)| {
                let energy = energy_of(&assignment);
                Sample { assignment, energy, occurrences }
            })
            .collect();
        Self::from_samples(samples)
    }

    /// Builds a sample set from a packed [`ShotBuffer`], aggregating
    /// identical shots and sorting ascending by energy.
    ///
    /// Duplicate detection happens on the packed word rows (hashing
    /// `⌈n/64⌉` `u64`s per shot rather than `n` bytes); only the distinct
    /// rows are unpacked, and `energy_of` is called once per distinct
    /// assignment. Produces exactly the same set as
    /// [`Self::from_reads`] on the unpacked shots.
    pub fn from_shots<F>(shots: &ShotBuffer, mut energy_of: F) -> Self
    where
        F: FnMut(&[bool]) -> f64,
    {
        let mut counts: HashMap<&[u64], u32> = HashMap::new();
        for row in shots.rows() {
            *counts.entry(row).or_insert(0) += 1;
        }
        let samples = counts
            .into_iter()
            .map(|(row, occurrences)| {
                let assignment = unpack_row(row, shots.num_bits());
                let energy = energy_of(&assignment);
                Sample { assignment, energy, occurrences }
            })
            .collect();
        Self::from_samples(samples)
    }

    /// Sorts aggregated samples into canonical order and totals the reads.
    fn from_samples(mut samples: Vec<Sample>) -> Self {
        samples.sort_by(|a, b| {
            a.energy
                .partial_cmp(&b.energy)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.assignment.cmp(&b.assignment))
        });
        let total_reads = samples.iter().map(|s| u64::from(s.occurrences)).sum();
        SampleSet { samples, total_reads }
    }

    /// Distinct samples, ascending by energy.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Total number of reads aggregated (sum of occurrences).
    pub fn total_reads(&self) -> u64 {
        self.total_reads
    }

    /// Number of distinct assignments.
    pub fn num_distinct(&self) -> usize {
        self.samples.len()
    }

    /// The lowest-energy sample, if any.
    pub fn best(&self) -> Option<&Sample> {
        self.samples.first()
    }

    /// Fraction of reads whose assignment satisfies `pred` (0.0 when empty).
    pub fn fraction_where<F>(&self, mut pred: F) -> f64
    where
        F: FnMut(&Sample) -> bool,
    {
        if self.total_reads == 0 {
            return 0.0;
        }
        let hits: u64 =
            self.samples.iter().filter(|s| pred(s)).map(|s| u64::from(s.occurrences)).sum();
        hits as f64 / self.total_reads as f64
    }

    /// Lowest-energy sample satisfying `pred`.
    pub fn best_where<F>(&self, mut pred: F) -> Option<&Sample>
    where
        F: FnMut(&Sample) -> bool,
    {
        self.samples.iter().find(|s| pred(s))
    }

    /// Mean value of bit `i` across reads (occurrence-weighted).
    pub fn mean_bit(&self, i: usize) -> f64 {
        self.fraction_where(|s| s.assignment[i])
    }

    /// Spin–spin correlation `⟨s_i s_j⟩` with `s = 2x − 1`
    /// (1 = always equal, −1 = always opposite, 0 = independent-looking).
    pub fn spin_correlation(&self, i: usize, j: usize) -> f64 {
        if self.total_reads == 0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for s in &self.samples {
            let si = if s.assignment[i] { 1.0 } else { -1.0 };
            let sj = if s.assignment[j] { 1.0 } else { -1.0 };
            acc += si * sj * f64::from(s.occurrences);
        }
        acc / self.total_reads as f64
    }

    /// Occurrence-weighted mean energy of the reads.
    pub fn mean_energy(&self) -> f64 {
        if self.total_reads == 0 {
            return 0.0;
        }
        self.samples.iter().map(|s| s.energy * f64::from(s.occurrences)).sum::<f64>()
            / self.total_reads as f64
    }

    /// Shannon entropy (bits) of the empirical assignment distribution —
    /// 0 for a deterministic sampler, up to `log2(num_distinct)` when
    /// every distinct assignment is equally likely.
    pub fn entropy_bits(&self) -> f64 {
        if self.total_reads == 0 {
            return 0.0;
        }
        let total = self.total_reads as f64;
        -self
            .samples
            .iter()
            .map(|s| {
                let p = f64::from(s.occurrences) / total;
                p * p.log2()
            })
            .sum::<f64>()
    }

    /// Merges another sample set into this one, re-aggregating duplicates.
    ///
    /// # Precondition
    /// Both sets must have been evaluated against the same model: when the
    /// same assignment appears in both, its energies must agree to within
    /// `1e-9` (debug builds assert this; release builds keep the
    /// first-seen energy). Merging sets built against different models is
    /// a logic error — the resulting energies would be meaningless.
    pub fn merge(&mut self, other: SampleSet) {
        let mut counts: HashMap<Vec<bool>, (f64, u32)> = HashMap::new();
        for s in self.samples.drain(..).chain(other.samples) {
            let entry = counts.entry(s.assignment).or_insert((s.energy, 0));
            debug_assert!(
                (entry.0 - s.energy).abs() <= 1e-9,
                "merging sample sets from different models: assignment seen with \
                 energy {} and {}",
                entry.0,
                s.energy,
            );
            entry.1 += s.occurrences;
        }
        let mut samples: Vec<Sample> = counts
            .into_iter()
            .map(|(assignment, (energy, occurrences))| Sample { assignment, energy, occurrences })
            .collect();
        samples.sort_by(|a, b| {
            a.energy
                .partial_cmp(&b.energy)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.assignment.cmp(&b.assignment))
        });
        self.total_reads = samples.iter().map(|s| u64::from(s.occurrences)).sum();
        self.samples = samples;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weight(x: &[bool]) -> f64 {
        x.iter().filter(|&&b| b).count() as f64
    }

    #[test]
    fn from_reads_aggregates_and_sorts() {
        let reads = vec![vec![true, true], vec![false, false], vec![true, true], vec![true, false]];
        let set = SampleSet::from_reads(reads, weight);
        assert_eq!(set.total_reads(), 4);
        assert_eq!(set.num_distinct(), 3);
        assert_eq!(set.best().unwrap().assignment, vec![false, false]);
        assert_eq!(set.samples()[2].occurrences, 2);
        assert_eq!(set.samples()[2].energy, 2.0);
    }

    #[test]
    fn from_shots_matches_from_reads_exactly() {
        let reads = vec![
            vec![true, true, false],
            vec![false, false, true],
            vec![true, true, false],
            vec![true, false, true],
        ];
        let packed = ShotBuffer::from_bit_vecs(&reads, 3);
        assert_eq!(SampleSet::from_shots(&packed, weight), SampleSet::from_reads(reads, weight));
    }

    #[test]
    fn from_shots_on_empty_buffer_is_empty() {
        let set = SampleSet::from_shots(&ShotBuffer::new(4), weight);
        assert_eq!(set.total_reads(), 0);
        assert!(set.best().is_none());
    }

    #[test]
    fn fraction_where_weights_by_occurrences() {
        let reads = vec![vec![true], vec![true], vec![true], vec![false]];
        let set = SampleSet::from_reads(reads, weight);
        let frac = set.fraction_where(|s| s.assignment[0]);
        assert!((frac - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_set_is_well_behaved() {
        let set = SampleSet::new();
        assert_eq!(set.total_reads(), 0);
        assert!(set.best().is_none());
        assert_eq!(set.fraction_where(|_| true), 0.0);
    }

    #[test]
    fn best_where_respects_energy_order() {
        let reads = vec![vec![false, true], vec![true, true], vec![false, false]];
        let set = SampleSet::from_reads(reads, weight);
        let best_with_first_set = set.best_where(|s| s.assignment[1]);
        assert_eq!(best_with_first_set.unwrap().assignment, vec![false, true]);
    }

    #[test]
    fn merge_re_aggregates_duplicates() {
        let a = SampleSet::from_reads(vec![vec![true], vec![false]], weight);
        let b = SampleSet::from_reads(vec![vec![true], vec![true]], weight);
        let mut merged = a;
        merged.merge(b);
        assert_eq!(merged.total_reads(), 4);
        assert_eq!(merged.num_distinct(), 2);
        let ones = merged.samples().iter().find(|s| s.assignment[0]).unwrap();
        assert_eq!(ones.occurrences, 3);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "different models")]
    fn merge_rejects_conflicting_energies_in_debug_builds() {
        let a = SampleSet::from_reads(vec![vec![true]], weight);
        let b = SampleSet::from_reads(vec![vec![true]], |_| 100.0);
        let mut merged = a;
        merged.merge(b);
    }

    #[test]
    fn observables_compute_expected_statistics() {
        // Three reads of [1,1], one of [0,0]: perfectly correlated bits.
        let reads = vec![vec![true, true], vec![true, true], vec![true, true], vec![false, false]];
        let set = SampleSet::from_reads(reads, weight);
        assert!((set.mean_bit(0) - 0.75).abs() < 1e-12);
        assert!((set.spin_correlation(0, 1) - 1.0).abs() < 1e-12);
        // Mean energy: 3·2 + 1·0 over 4 reads = 1.5.
        assert!((set.mean_energy() - 1.5).abs() < 1e-12);
        // Entropy of {3/4, 1/4}: 0.811 bits.
        assert!((set.entropy_bits() - 0.8112781).abs() < 1e-6);
    }

    #[test]
    fn anticorrelated_bits_have_negative_spin_correlation() {
        let reads = vec![vec![true, false], vec![false, true]];
        let set = SampleSet::from_reads(reads, weight);
        assert!((set.spin_correlation(0, 1) + 1.0).abs() < 1e-12);
        // Uniform two-outcome distribution: exactly 1 bit of entropy.
        assert!((set.entropy_bits() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn observables_on_empty_set_are_zero() {
        let set = SampleSet::new();
        assert_eq!(set.mean_energy(), 0.0);
        assert_eq!(set.entropy_bits(), 0.0);
        assert_eq!(set.spin_correlation(0, 0), 0.0);
    }

    #[test]
    fn ties_break_deterministically_on_assignment() {
        let reads = vec![vec![true, false], vec![false, true]];
        let set = SampleSet::from_reads(reads, weight);
        // Same energy; sorted by assignment bits (false < true).
        assert_eq!(set.samples()[0].assignment, vec![false, true]);
    }
}
