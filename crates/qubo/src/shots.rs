//! Packed bit-string shot buffers — the wire format between samplers and
//! decoders.
//!
//! Every backend in the workspace produces *shots*: measurement outcomes
//! over `n` binary variables, tens of thousands per experiment. Storing
//! each shot as a heap-allocated `Vec<bool>` costs one allocation plus
//! `n` bytes per shot and makes aggregation hash whole byte vectors. A
//! [`ShotBuffer`] instead packs every shot into `⌈n/64⌉` `u64` words of
//! one contiguous row-major matrix: a shot append is a couple of word
//! stores, readout errors flip whole words at a time, and duplicate
//! detection hashes 8-byte words instead of bytes.
//!
//! The packing is a pure change of representation: bit `q` of a shot is
//! bit `q % 64` of row word `q / 64`, matching the basis-state convention
//! used everywhere else (variable/qubit `q` ↔ bit `q` of the basis index).
//! Unused high bits of the last word are kept zero so rows can be compared
//! and hashed directly.

/// A packed matrix of measurement shots: one row per shot, one bit per
/// variable, rows stored as `⌈num_bits/64⌉` little-endian `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShotBuffer {
    num_bits: usize,
    words_per_shot: usize,
    len: usize,
    words: Vec<u64>,
}

/// Unpacks one packed row into the `Vec<bool>` form the decoders consume.
pub fn unpack_row(words: &[u64], num_bits: usize) -> Vec<bool> {
    (0..num_bits).map(|q| words[q / 64] >> (q % 64) & 1 == 1).collect()
}

impl ShotBuffer {
    /// An empty buffer for shots of `num_bits` bits each.
    pub fn new(num_bits: usize) -> Self {
        Self::with_capacity(num_bits, 0)
    }

    /// An empty buffer with room for `shots` rows pre-allocated.
    pub fn with_capacity(num_bits: usize, shots: usize) -> Self {
        // Zero-width shots still occupy one (all-zero) word so that row
        // iteration and hashing need no special case.
        let words_per_shot = num_bits.div_ceil(64).max(1);
        ShotBuffer {
            num_bits,
            words_per_shot,
            len: 0,
            words: Vec::with_capacity(shots * words_per_shot),
        }
    }

    /// Builds a buffer from unpacked reads (test/compatibility helper).
    pub fn from_bit_vecs(reads: &[Vec<bool>], num_bits: usize) -> Self {
        let mut buf = Self::with_capacity(num_bits, reads.len());
        for read in reads {
            buf.push_bits(read);
        }
        buf
    }

    /// Bits per shot.
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// `u64` words per shot row.
    pub fn words_per_shot(&self) -> usize {
        self.words_per_shot
    }

    /// Number of shots stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no shots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a shot given as a basis-state index: bit `q` of `z` becomes
    /// bit `q` of the shot. Only valid for `num_bits ≤ 64` (the dense
    /// state-vector regime).
    pub fn push_index(&mut self, z: u64) {
        debug_assert!(self.num_bits <= 64, "push_index needs single-word shots");
        debug_assert!(self.num_bits == 64 || z >> self.num_bits == 0, "index {z} out of range");
        self.words.push(z);
        for _ in 1..self.words_per_shot {
            self.words.push(0);
        }
        self.len += 1;
    }

    /// Appends a shot from an unpacked bit slice.
    pub fn push_bits(&mut self, bits: &[bool]) {
        assert_eq!(bits.len(), self.num_bits, "shot width mismatch");
        let start = self.words.len();
        self.words.resize(start + self.words_per_shot, 0);
        for (q, &b) in bits.iter().enumerate() {
            if b {
                self.words[start + q / 64] |= 1u64 << (q % 64);
            }
        }
        self.len += 1;
    }

    /// Bit `bit` of shot `shot`.
    pub fn get(&self, shot: usize, bit: usize) -> bool {
        assert!(shot < self.len && bit < self.num_bits, "shot/bit out of range");
        self.words[shot * self.words_per_shot + bit / 64] >> (bit % 64) & 1 == 1
    }

    /// Flips bit `bit` of shot `shot`.
    pub fn flip(&mut self, shot: usize, bit: usize) {
        assert!(shot < self.len && bit < self.num_bits, "shot/bit out of range");
        self.words[shot * self.words_per_shot + bit / 64] ^= 1u64 << (bit % 64);
    }

    /// XORs a whole word of flip decisions into row `shot` — the word-wise
    /// readout-error path. `mask` bits beyond `num_bits` are ignored so the
    /// zero-padding invariant of the last word survives.
    pub fn xor_word(&mut self, shot: usize, word: usize, mask: u64) {
        assert!(shot < self.len && word < self.words_per_shot, "shot/word out of range");
        self.words[shot * self.words_per_shot + word] ^= mask & self.word_mask(word);
    }

    /// Valid-bit mask of row word `word`.
    fn word_mask(&self, word: usize) -> u64 {
        let bits_before = word * 64;
        let bits_here = self.num_bits.saturating_sub(bits_before).min(64);
        if bits_here == 64 {
            u64::MAX
        } else {
            (1u64 << bits_here) - 1
        }
    }

    /// The packed words of row `shot`.
    pub fn row(&self, shot: usize) -> &[u64] {
        assert!(shot < self.len, "shot out of range");
        &self.words[shot * self.words_per_shot..(shot + 1) * self.words_per_shot]
    }

    /// Iterates over rows as packed word slices, in insertion order.
    pub fn rows(&self) -> impl Iterator<Item = &[u64]> {
        self.words.chunks_exact(self.words_per_shot)
    }

    /// Unpacks row `shot` into a bit vector.
    pub fn row_bits(&self, shot: usize) -> Vec<bool> {
        unpack_row(self.row(shot), self.num_bits)
    }

    /// Iterates over rows as unpacked bit vectors (compatibility helper —
    /// prefer [`Self::rows`] on hot paths).
    pub fn iter_bits(&self) -> impl Iterator<Item = Vec<bool>> + '_ {
        self.rows().map(|row| unpack_row(row, self.num_bits))
    }

    /// Unpacks the whole buffer (test/compatibility helper).
    pub fn to_bit_vecs(&self) -> Vec<Vec<bool>> {
        self.iter_bits().collect()
    }

    /// Number of shots with bit `bit` set — the per-variable frequency the
    /// statistical tests assert on.
    pub fn count_ones(&self, bit: usize) -> usize {
        assert!(bit < self.num_bits, "bit out of range");
        let (word, mask) = (bit / 64, 1u64 << (bit % 64));
        self.rows().filter(|row| row[word] & mask != 0).count()
    }

    /// Appends every shot of `other`, preserving order.
    pub fn append(&mut self, other: &ShotBuffer) {
        assert_eq!(self.num_bits, other.num_bits, "shot width mismatch");
        self.words.extend_from_slice(&other.words);
        self.len += other.len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_index_round_trips_through_bits() {
        let mut buf = ShotBuffer::with_capacity(3, 4);
        for z in [0b000u64, 0b101, 0b111, 0b010] {
            buf.push_index(z);
        }
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.row_bits(1), vec![true, false, true]);
        assert_eq!(buf.row_bits(3), vec![false, true, false]);
        assert!(buf.get(2, 2));
        assert!(!buf.get(0, 0));
    }

    #[test]
    fn push_bits_matches_push_index() {
        let mut a = ShotBuffer::new(5);
        a.push_index(0b10110);
        let mut b = ShotBuffer::new(5);
        b.push_bits(&[false, true, true, false, true]);
        assert_eq!(a, b);
    }

    #[test]
    fn wide_shots_span_multiple_words() {
        let n = 130;
        let mut bits = vec![false; n];
        bits[0] = true;
        bits[64] = true;
        bits[129] = true;
        let mut buf = ShotBuffer::new(n);
        buf.push_bits(&bits);
        assert_eq!(buf.words_per_shot(), 3);
        assert_eq!(buf.row(0), &[1, 1, 2]);
        assert_eq!(buf.row_bits(0), bits);
    }

    #[test]
    fn flip_and_xor_word_agree() {
        let mut a = ShotBuffer::new(7);
        a.push_index(0b1010101);
        let mut b = a.clone();
        for bit in [0, 3, 6] {
            a.flip(0, bit);
        }
        b.xor_word(0, 0, 0b1001001);
        assert_eq!(a, b);
    }

    #[test]
    fn xor_word_ignores_bits_beyond_width() {
        let mut buf = ShotBuffer::new(3);
        buf.push_index(0);
        buf.xor_word(0, 0, u64::MAX);
        assert_eq!(buf.row(0), &[0b111]);
    }

    #[test]
    fn append_preserves_order_and_count() {
        let mut a = ShotBuffer::new(2);
        a.push_index(0b01);
        let mut b = ShotBuffer::new(2);
        b.push_index(0b10);
        b.push_index(0b11);
        a.append(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.to_bit_vecs(), vec![vec![true, false], vec![false, true], vec![true, true]]);
    }

    #[test]
    fn count_ones_counts_per_variable() {
        let buf =
            ShotBuffer::from_bit_vecs(&[vec![true, false], vec![true, true], vec![false, true]], 2);
        assert_eq!(buf.count_ones(0), 2);
        assert_eq!(buf.count_ones(1), 2);
    }

    #[test]
    fn zero_width_shots_are_countable() {
        let mut buf = ShotBuffer::new(0);
        buf.push_bits(&[]);
        buf.push_bits(&[]);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.rows().count(), 2);
        assert_eq!(buf.row(0), &[0]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn append_rejects_mismatched_widths() {
        let mut a = ShotBuffer::new(2);
        a.append(&ShotBuffer::new(3));
    }
}
