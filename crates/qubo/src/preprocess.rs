//! QUBO preprocessing: optimality-preserving variable fixing.
//!
//! Implements the first-order persistency rules surveyed by Lewis & Glover
//! (*Quadratic Unconstrained Binary Optimization Problem Preprocessing*,
//! the paper's reference \[48\]): a variable whose objective contribution is
//! non-negative under **every** completion can be fixed to 0, and one whose
//! contribution is non-positive under every completion can be fixed to 1,
//! without losing all optima. Fixing propagates (folding the fixed value
//! into neighbours' linear terms) until a fixpoint.
//!
//! On penalty-encoded join-ordering QUBOs this typically eliminates only a
//! handful of variables (penalty terms have mixed signs by design), but
//! every eliminated variable is a qubit saved — exactly the currency the
//! paper's feasibility analysis trades in.

use crate::model::Qubo;

/// The result of preprocessing.
#[derive(Debug, Clone)]
pub struct Preprocessed {
    /// The reduced QUBO over the surviving variables.
    pub reduced: Qubo,
    /// Per original variable: `Some(value)` when fixed, `None` when free.
    pub fixed: Vec<Option<bool>>,
    /// Map from original variable index to reduced index (for free vars).
    pub index_map: Vec<Option<usize>>,
}

impl Preprocessed {
    /// Number of variables eliminated.
    pub fn num_fixed(&self) -> usize {
        self.fixed.iter().filter(|f| f.is_some()).count()
    }

    /// Lifts an assignment of the reduced QUBO back to the original space.
    pub fn lift(&self, reduced_assignment: &[bool]) -> Vec<bool> {
        self.fixed
            .iter()
            .zip(&self.index_map)
            .map(|(fixed, idx)| match (fixed, idx) {
                (Some(v), _) => *v,
                (None, Some(i)) => reduced_assignment[*i],
                (None, None) => unreachable!("free variables have reduced indices"),
            })
            .collect()
    }
}

/// Applies first-order persistency fixing until no more variables fix.
pub fn fix_variables(qubo: &Qubo) -> Preprocessed {
    let n = qubo.num_vars();
    let mut linear: Vec<f64> = (0..n).map(|i| qubo.linear(i)).collect();
    let mut offset = qubo.offset();
    // Mutable adjacency: (neighbor, weight).
    let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for (i, j, c) in qubo.quadratic_iter() {
        if c != 0.0 {
            adj[i].push((j, c));
            adj[j].push((i, c));
        }
    }
    let mut fixed: Vec<Option<bool>> = vec![None; n];

    loop {
        let mut changed = false;
        for i in 0..n {
            if fixed[i].is_some() {
                continue;
            }
            let mut min_extra = 0.0f64;
            let mut max_extra = 0.0f64;
            for &(j, c) in &adj[i] {
                if fixed[j].is_some() {
                    continue; // already folded into linear[i]
                }
                if c < 0.0 {
                    min_extra += c;
                } else {
                    max_extra += c;
                }
            }
            let value = if linear[i] + min_extra >= 0.0 {
                // Activating i can never pay off.
                Some(false)
            } else if linear[i] + max_extra <= 0.0 {
                // Activating i can never hurt.
                Some(true)
            } else {
                None
            };
            if let Some(v) = value {
                fixed[i] = Some(v);
                changed = true;
                if v {
                    offset += linear[i];
                    // Fold couplings into the neighbours' linear terms.
                    let neighbors = adj[i].clone();
                    for (j, c) in neighbors {
                        if fixed[j].is_none() {
                            linear[j] += c;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Build the reduced model over free variables.
    let mut index_map = vec![None; n];
    let mut next = 0usize;
    for i in 0..n {
        if fixed[i].is_none() {
            index_map[i] = Some(next);
            next += 1;
        }
    }
    let mut reduced = Qubo::new(next);
    reduced.add_offset(offset);
    for i in 0..n {
        if let Some(ri) = index_map[i] {
            reduced.add_linear(ri, linear[i]);
        }
    }
    for (i, j, c) in qubo.quadratic_iter() {
        if let (Some(ri), Some(rj)) = (index_map[i], index_map[j]) {
            if c != 0.0 {
                reduced.add_quadratic(ri, rj, c);
            }
        }
    }
    Preprocessed { reduced, fixed, index_map }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::ExactSolver;

    #[test]
    fn positive_linear_only_fixes_to_zero() {
        let mut q = Qubo::new(2);
        q.add_linear(0, 3.0);
        q.add_linear(1, -2.0);
        let p = fix_variables(&q);
        assert_eq!(p.fixed, vec![Some(false), Some(true)]);
        assert_eq!(p.num_fixed(), 2);
        assert_eq!(p.reduced.num_vars(), 0);
        assert_eq!(p.reduced.offset(), -2.0);
        assert_eq!(p.lift(&[]), vec![false, true]);
    }

    #[test]
    fn mixed_couplings_block_fixing() {
        // -x0 - x1 + 2 x0 x1: neither rule applies to either variable.
        let mut q = Qubo::new(2);
        q.add_linear(0, -1.0);
        q.add_linear(1, -1.0);
        q.add_quadratic(0, 1, 2.0);
        let p = fix_variables(&q);
        assert_eq!(p.num_fixed(), 0);
        assert_eq!(p.reduced.num_vars(), 2);
    }

    #[test]
    fn fixing_cascades_through_the_graph() {
        // x0 is always-on (strong negative bias); that makes x1's effective
        // linear term positive, fixing it off.
        let mut q = Qubo::new(2);
        q.add_linear(0, -10.0);
        q.add_linear(1, -1.0);
        q.add_quadratic(0, 1, 2.0);
        let p = fix_variables(&q);
        assert_eq!(p.fixed[0], Some(true));
        assert_eq!(p.fixed[1], Some(false), "2 - 1 > 0 after folding x0 = 1");
    }

    #[test]
    fn preprocessing_preserves_the_optimum() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        for _ in 0..30 {
            let n = rng.random_range(2..10);
            let mut q = Qubo::new(n);
            for i in 0..n {
                q.add_linear(i, rng.random_range(-3.0..3.0));
                for j in i + 1..n {
                    if rng.random_bool(0.4) {
                        q.add_quadratic(i, j, rng.random_range(-3.0..3.0));
                    }
                }
            }
            let before = ExactSolver::new().min_energy(&q).unwrap();
            let p = fix_variables(&q);
            let after = if p.reduced.num_vars() == 0 {
                p.reduced.offset()
            } else {
                ExactSolver::new().min_energy(&p.reduced).unwrap()
            };
            assert!(
                (before - after).abs() < 1e-9,
                "optimum changed: {before} vs {after} (fixed {})",
                p.num_fixed()
            );
        }
    }

    #[test]
    fn lifted_solutions_evaluate_consistently() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut q = Qubo::new(6);
        for i in 0..6 {
            q.add_linear(i, rng.random_range(-4.0..4.0));
            for j in i + 1..6 {
                q.add_quadratic(i, j, rng.random_range(-1.0..1.0));
            }
        }
        let p = fix_variables(&q);
        if p.reduced.num_vars() > 0 {
            let sol = ExactSolver::new().solve(&p.reduced).unwrap();
            let lifted = p.lift(&sol.assignment);
            let direct = q.energy(&lifted).unwrap();
            assert!((direct - sol.energy).abs() < 1e-9, "{direct} vs {}", sol.energy);
        }
    }

    #[test]
    fn empty_model_is_handled() {
        let q = Qubo::new(0);
        let p = fix_variables(&q);
        assert_eq!(p.num_fixed(), 0);
        assert!(p.lift(&[]).is_empty());
    }
}
