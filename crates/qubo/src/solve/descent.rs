//! Steepest-descent local search with random restarts.
//!
//! The simplest QUBO baseline: from a random assignment, repeatedly take
//! the single flip with the largest energy decrease until none improves.
//! Useful as a floor for judging the other heuristics, and as the local
//! "polish" step after sampling-based solvers.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::error::QuboError;
use crate::model::Qubo;
use crate::solve::Solution;

/// Greedy steepest-descent solver.
#[derive(Debug, Clone)]
pub struct SteepestDescent {
    /// Random restarts.
    pub restarts: usize,
    /// RNG seed for the starting assignments.
    pub seed: u64,
}

impl Default for SteepestDescent {
    fn default() -> Self {
        SteepestDescent { restarts: 20, seed: 0 }
    }
}

impl SteepestDescent {
    /// Creates a solver with the given seed.
    pub fn with_seed(seed: u64) -> Self {
        SteepestDescent { seed, ..Default::default() }
    }

    /// Runs all restarts, returning the best local minimum found.
    pub fn solve(&self, qubo: &Qubo) -> Result<Solution, QuboError> {
        qubo.validate()?;
        assert!(self.restarts >= 1, "need at least one restart");
        let n = qubo.num_vars();
        if n == 0 {
            return Ok(Solution { assignment: Vec::new(), energy: qubo.offset() });
        }
        let compiled = qubo.compile();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut best: Option<Solution> = None;

        for _ in 0..self.restarts {
            // Restarts run sequentially, so the recorder's per-key instance
            // counter disambiguates them (one energy series per restart).
            let energy_curve = qjo_obs::convergence::series("descent", "energy");
            let mut flips = 0u64;

            let mut x: Vec<bool> = (0..n).map(|_| rng.random_bool(0.5)).collect();
            let mut energy = compiled.energy(&x);
            let mut gains = compiled.all_flip_gains(&x);
            loop {
                // Steepest admissible flip.
                let (flip, gain) = gains
                    .iter()
                    .copied()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite gains"))
                    .expect("n >= 1");
                if gain >= -1e-15 {
                    break; // local minimum
                }
                x[flip] = !x[flip];
                energy += gain;
                energy_curve.record(flips, energy);
                flips += 1;
                gains[flip] = -gains[flip];
                for (j, w) in compiled.neighbors(flip) {
                    let delta = if x[flip] { w } else { -w };
                    gains[j] += if x[j] { -delta } else { delta };
                }
            }
            match &best {
                Some(b) if b.energy <= energy => {}
                _ => best = Some(Solution { assignment: x, energy }),
            }
        }
        Ok(best.expect("at least one restart"))
    }

    /// Polishes an existing assignment to its local minimum.
    pub fn polish(&self, qubo: &Qubo, start: &[bool]) -> Result<Solution, QuboError> {
        qubo.validate()?;
        if start.len() != qubo.num_vars() {
            return Err(QuboError::AssignmentLength {
                got: start.len(),
                expected: qubo.num_vars(),
            });
        }
        let compiled = qubo.compile();
        let mut x = start.to_vec();
        let mut energy = compiled.energy(&x);
        let mut gains = compiled.all_flip_gains(&x);
        while let Some((flip, gain)) = gains
            .iter()
            .copied()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite gains"))
        {
            if gain >= -1e-15 {
                break;
            }
            x[flip] = !x[flip];
            energy += gain;
            gains[flip] = -gains[flip];
            for (j, w) in compiled.neighbors(flip) {
                let delta = if x[flip] { w } else { -w };
                gains[j] += if x[j] { -delta } else { delta };
            }
        }
        Ok(Solution { assignment: x, energy })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::ExactSolver;

    fn random_qubo(seed: u64, n: usize, density: f64) -> Qubo {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut q = Qubo::new(n);
        for i in 0..n {
            q.add_linear(i, rng.random_range(-2.0..2.0));
            for j in i + 1..n {
                if rng.random_bool(density) {
                    q.add_quadratic(i, j, rng.random_range(-2.0..2.0));
                }
            }
        }
        q
    }

    #[test]
    fn reaches_exact_optimum_on_small_models_with_restarts() {
        for seed in 0..5 {
            let q = random_qubo(seed, 10, 0.4);
            let exact = ExactSolver::new().min_energy(&q).unwrap();
            let sd = SteepestDescent { restarts: 50, seed: 1 }.solve(&q).unwrap();
            assert!(
                (sd.energy - exact).abs() < 1e-9,
                "seed {seed}: descent {} vs exact {exact}",
                sd.energy
            );
        }
    }

    #[test]
    fn solution_is_a_local_minimum() {
        let q = random_qubo(3, 15, 0.5);
        let sd = SteepestDescent::default().solve(&q).unwrap();
        let compiled = q.compile();
        for i in 0..15 {
            assert!(compiled.flip_gain(&sd.assignment, i) >= -1e-12, "flip {i} still improves");
        }
        assert!((q.energy(&sd.assignment).unwrap() - sd.energy).abs() < 1e-9);
    }

    #[test]
    fn polish_never_worsens_and_stops_at_local_minimum() {
        let q = random_qubo(7, 12, 0.4);
        let start = vec![false; 12];
        let start_energy = q.energy(&start).unwrap();
        let polished = SteepestDescent::default().polish(&q, &start).unwrap();
        assert!(polished.energy <= start_energy + 1e-12);
        let compiled = q.compile();
        for i in 0..12 {
            assert!(compiled.flip_gain(&polished.assignment, i) >= -1e-12);
        }
    }

    #[test]
    fn polish_rejects_wrong_length() {
        let q = random_qubo(1, 4, 0.5);
        let err = SteepestDescent::default().polish(&q, &[true, false]).unwrap_err();
        assert!(matches!(err, QuboError::AssignmentLength { got: 2, expected: 4 }));
    }

    #[test]
    fn deterministic_per_seed() {
        let q = random_qubo(9, 14, 0.3);
        let a = SteepestDescent::with_seed(4).solve(&q).unwrap();
        let b = SteepestDescent::with_seed(4).solve(&q).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_variable_model() {
        let mut q = Qubo::new(0);
        q.add_offset(2.5);
        assert_eq!(SteepestDescent::default().solve(&q).unwrap().energy, 2.5);
    }
}
