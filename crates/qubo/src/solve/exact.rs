//! Exhaustive QUBO minimisation over all 2^n assignments.
//!
//! Uses a Gray-code walk so each step flips exactly one variable, updating
//! the energy incrementally in O(degree) instead of re-evaluating the full
//! polynomial, for an overall O(2^n · avg_degree) enumeration.

use crate::error::QuboError;
use crate::model::Qubo;
use crate::solve::Solution;

/// Exact solver by Gray-code enumeration. Refuses models beyond
/// [`ExactSolver::max_vars`] variables.
#[derive(Debug, Clone)]
pub struct ExactSolver {
    max_vars: usize,
}

impl Default for ExactSolver {
    fn default() -> Self {
        ExactSolver { max_vars: 28 }
    }
}

impl ExactSolver {
    /// Creates a solver with the default 28-variable cap (≈ 268M states).
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the variable cap. Enumeration cost doubles per variable.
    pub fn with_max_vars(max_vars: usize) -> Self {
        ExactSolver { max_vars }
    }

    /// Maximum model size this solver instance accepts.
    pub fn max_vars(&self) -> usize {
        self.max_vars
    }

    /// Finds a global minimiser of the QUBO.
    pub fn solve(&self, qubo: &Qubo) -> Result<Solution, QuboError> {
        Ok(self.solve_k_best(qubo, 1)?.pop().expect("k=1 yields one solution"))
    }

    /// Finds the `k` lowest-energy assignments, ascending by energy.
    ///
    /// Ties are resolved in Gray-code visiting order, which is deterministic.
    pub fn solve_k_best(&self, qubo: &Qubo, k: usize) -> Result<Vec<Solution>, QuboError> {
        let n = qubo.num_vars();
        if n > self.max_vars {
            return Err(QuboError::TooLarge { num_vars: n, max_vars: self.max_vars });
        }
        qubo.validate()?;
        assert!(k >= 1, "k must be at least 1");

        let compiled = qubo.compile();
        let mut x = vec![false; n];
        let mut energy = qubo.offset();

        // Max-heap of (energy, code) keeping the k smallest energies seen.
        let mut best: Vec<(f64, u64)> = Vec::with_capacity(k + 1);
        let push = |best: &mut Vec<(f64, u64)>, e: f64, code: u64| {
            best.push((e, code));
            best.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            if best.len() > k {
                best.pop();
            }
        };

        push(&mut best, energy, 0);
        let total: u64 = 1u64 << n;
        let mut gray: u64 = 0;
        for step in 1..total {
            // Standard Gray sequence: g(i) = i ^ (i >> 1); bit flipped at step
            // i is the index of the lowest set bit of i.
            let flip = step.trailing_zeros() as usize;
            energy += compiled.flip_gain(&x, flip);
            x[flip] = !x[flip];
            gray ^= 1u64 << flip;
            if best.len() < k || energy < best.last().expect("non-empty").0 {
                push(&mut best, energy, gray);
            }
        }

        Ok(best
            .into_iter()
            .map(|(e, code)| Solution {
                assignment: (0..n).map(|i| code >> i & 1 == 1).collect(),
                energy: e,
            })
            .collect())
    }

    /// Computes the exact minimum energy without materialising the argmin.
    pub fn min_energy(&self, qubo: &Qubo) -> Result<f64, QuboError> {
        Ok(self.solve(qubo)?.energy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_minimum_of_small_model() {
        // min -x0 - x1 + 2 x0 x1: minima at (1,0) and (0,1) with energy -1.
        let mut q = Qubo::new(2);
        q.add_linear(0, -1.0);
        q.add_linear(1, -1.0);
        q.add_quadratic(0, 1, 2.0);
        let s = ExactSolver::new().solve(&q).unwrap();
        assert_eq!(s.energy, -1.0);
        assert_ne!(s.assignment[0], s.assignment[1]);
    }

    #[test]
    fn k_best_is_sorted_and_complete() {
        let mut q = Qubo::new(2);
        q.add_linear(0, 1.0);
        q.add_linear(1, 2.0);
        let all = ExactSolver::new().solve_k_best(&q, 4).unwrap();
        let energies: Vec<f64> = all.iter().map(|s| s.energy).collect();
        assert_eq!(energies, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn refuses_oversized_models() {
        let q = Qubo::new(40);
        let err = ExactSolver::new().solve(&q).unwrap_err();
        assert!(matches!(err, QuboError::TooLarge { num_vars: 40, .. }));
    }

    #[test]
    fn custom_cap_is_honoured() {
        let q = Qubo::new(10);
        assert!(ExactSolver::with_max_vars(9).solve(&q).is_err());
        assert!(ExactSolver::with_max_vars(10).solve(&q).is_ok());
    }

    #[test]
    fn agrees_with_brute_force_on_random_model() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let n = rng.random_range(1..=8);
            let mut q = Qubo::new(n);
            for i in 0..n {
                q.add_linear(i, rng.random_range(-5.0..5.0));
                for j in i + 1..n {
                    if rng.random_bool(0.5) {
                        q.add_quadratic(i, j, rng.random_range(-5.0..5.0));
                    }
                }
            }
            let fast = ExactSolver::new().min_energy(&q).unwrap();
            let mut brute = f64::INFINITY;
            for bits in 0..1u32 << n {
                let x: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
                brute = brute.min(q.energy(&x).unwrap());
            }
            assert!((fast - brute).abs() < 1e-9, "n={n}: {fast} vs {brute}");
        }
    }

    #[test]
    fn single_variable_model() {
        let mut q = Qubo::new(1);
        q.add_linear(0, -3.0);
        q.add_offset(1.0);
        let s = ExactSolver::new().solve(&q).unwrap();
        assert_eq!(s.energy, -2.0);
        assert_eq!(s.assignment, vec![true]);
    }

    #[test]
    fn zero_variable_model_returns_offset() {
        let mut q = Qubo::new(0);
        q.add_offset(4.5);
        let s = ExactSolver::new().solve(&q).unwrap();
        assert_eq!(s.energy, 4.5);
        assert!(s.assignment.is_empty());
    }
}
