//! Single-flip Metropolis simulated annealing for QUBOs.
//!
//! The classical heuristic baseline; also reused by `qjo-anneal` as the
//! "thermal only" reference against the path-integral quantum annealing
//! simulation.
//!
//! Restarts are independent work units: each derives its own RNG stream
//! from `(seed, restart_index)` via [`qjo_exec::stream_seed`], so the
//! sample set is bit-identical at any [`Parallelism`] setting.

use qjo_exec::{par_map_seeded, Parallelism};
use rand::seq::SliceRandom;
use rand::RngExt;

use crate::error::QuboError;
use crate::model::Qubo;
use crate::sample::SampleSet;
use crate::solve::Solution;

/// How the temperature decays over sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CoolingSchedule {
    /// `T(k) = t0 · r^k` for sweep `k` (classic geometric cooling).
    Geometric {
        /// Initial temperature.
        t0: f64,
        /// Decay ratio per sweep, in (0, 1).
        ratio: f64,
    },
    /// Linear interpolation from `t0` down to `t1` across all sweeps.
    Linear {
        /// Initial temperature.
        t0: f64,
        /// Final temperature.
        t1: f64,
    },
}

impl CoolingSchedule {
    /// Temperature at sweep `k` of `total` sweeps.
    pub fn temperature(&self, k: usize, total: usize) -> f64 {
        match *self {
            CoolingSchedule::Geometric { t0, ratio } => t0 * ratio.powi(k as i32),
            CoolingSchedule::Linear { t0, t1 } => {
                if total <= 1 {
                    t1
                } else {
                    let f = k as f64 / (total - 1) as f64;
                    t0 + (t1 - t0) * f
                }
            }
        }
    }

    /// A schedule scaled to the model: starts hot relative to the largest
    /// coefficient, ends cold enough to freeze unit-scale moves.
    pub fn auto_for(qubo: &Qubo) -> CoolingSchedule {
        let scale = qubo.max_abs_coefficient().max(1.0);
        CoolingSchedule::Geometric { t0: 2.0 * scale, ratio: 0.97 }
    }
}

/// Simulated annealing with restarts.
#[derive(Debug, Clone)]
pub struct SimulatedAnnealing {
    /// Number of full temperature descents from random starts.
    pub restarts: usize,
    /// Sweeps (each sweep attempts one flip per variable) per restart.
    pub sweeps: usize,
    /// Cooling schedule; `None` picks [`CoolingSchedule::auto_for`] per model.
    pub schedule: Option<CoolingSchedule>,
    /// RNG seed for reproducibility.
    pub seed: u64,
    /// Worker threads for the restart loop; affects wall-clock only,
    /// never results.
    pub parallelism: Parallelism,
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        SimulatedAnnealing {
            restarts: 10,
            sweeps: 200,
            schedule: None,
            seed: 0,
            parallelism: Parallelism::auto(),
        }
    }
}

impl SimulatedAnnealing {
    /// Creates a solver with default parameters and the given seed.
    pub fn with_seed(seed: u64) -> Self {
        SimulatedAnnealing { seed, ..Default::default() }
    }

    /// Runs all restarts, returning the best solution found.
    pub fn solve(&self, qubo: &Qubo) -> Result<Solution, QuboError> {
        let set = self.sample(qubo)?;
        let best = set.best().expect("restarts >= 1 yields samples");
        Ok(Solution { assignment: best.assignment.clone(), energy: best.energy })
    }

    /// Runs all restarts, returning every end-of-descent state as a sample
    /// set (one read per restart).
    ///
    /// Restart `i` draws from its own RNG stream derived from
    /// `(self.seed, i)`, so the result does not depend on
    /// [`Self::parallelism`].
    ///
    /// # Errors
    /// Returns [`QuboError::InvalidSchedule`] for a geometric schedule
    /// with non-positive `t0` (frozen walk) or `ratio` outside `(0, 1)`
    /// (heating or frozen schedule).
    pub fn sample(&self, qubo: &Qubo) -> Result<SampleSet, QuboError> {
        qubo.validate()?;
        assert!(self.restarts >= 1, "need at least one restart");
        assert!(self.sweeps >= 1, "need at least one sweep");
        if let Some(CoolingSchedule::Geometric { t0, ratio }) = self.schedule {
            // Positive comparisons, negated as named bools, so NaN
            // parameters fail the checks and are rejected too.
            let t0_ok = t0 > 0.0;
            let ratio_ok = ratio > 0.0 && ratio < 1.0;
            if !t0_ok || !ratio_ok {
                return Err(QuboError::InvalidSchedule { t0, ratio });
            }
        }

        let _span = qjo_obs::span!("qubo.sa.sample");
        qjo_obs::counter!("sa.restarts").add(self.restarts as u64);
        qjo_obs::counter!("sa.sweeps").add((self.restarts * self.sweeps) as u64);

        let n = qubo.num_vars();
        let compiled = qubo.compile();
        let schedule = self.schedule.unwrap_or_else(|| CoolingSchedule::auto_for(qubo));

        let restarts: Vec<usize> = (0..self.restarts).collect();
        let reads = par_map_seeded(restarts, self.seed, self.parallelism, |_, rng| {
            // Convergence series are keyed by the restart's par_map unit
            // path, so the exported curves are per-restart and
            // thread-count independent. Inert unless a recorder is active.
            let energy_curve = qjo_obs::convergence::series("sa", "energy");
            let acceptance_curve = qjo_obs::convergence::series("sa", "acceptance");

            let mut order: Vec<usize> = (0..n).collect();
            let mut x: Vec<bool> = (0..n).map(|_| rng.random_bool(0.5)).collect();
            let mut energy = compiled.energy(&x);
            let mut best_x = x.clone();
            let mut best_e = energy;

            for sweep in 0..self.sweeps {
                let temp = schedule.temperature(sweep, self.sweeps).max(1e-12);
                order.shuffle(rng);
                let mut accepted = 0usize;
                for &i in &order {
                    let gain = compiled.flip_gain(&x, i);
                    if gain <= 0.0 || rng.random::<f64>() < (-gain / temp).exp() {
                        x[i] = !x[i];
                        energy += gain;
                        accepted += 1;
                        if energy < best_e {
                            best_e = energy;
                            best_x.copy_from_slice(&x);
                        }
                    }
                }
                energy_curve.record(sweep as u64, energy);
                acceptance_curve.record(sweep as u64, accepted as f64 / n.max(1) as f64);
            }
            best_x
        });

        Ok(SampleSet::from_reads(reads, |x| {
            qubo.energy(x).expect("assignment built at model length")
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::ExactSolver;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_qubo(seed: u64, n: usize, density: f64) -> Qubo {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut q = Qubo::new(n);
        for i in 0..n {
            q.add_linear(i, rng.random_range(-2.0..2.0));
            for j in i + 1..n {
                if rng.random_bool(density) {
                    q.add_quadratic(i, j, rng.random_range(-2.0..2.0));
                }
            }
        }
        q
    }

    #[test]
    fn reaches_exact_optimum_on_small_models() {
        for seed in 0..5 {
            let q = random_qubo(seed, 10, 0.4);
            let exact = ExactSolver::new().min_energy(&q).unwrap();
            let sa = SimulatedAnnealing { restarts: 20, sweeps: 300, ..Default::default() }
                .solve(&q)
                .unwrap();
            assert!(
                (sa.energy - exact).abs() < 1e-9,
                "seed {seed}: SA {} vs exact {exact}",
                sa.energy
            );
        }
    }

    #[test]
    fn is_deterministic_for_fixed_seed() {
        let q = random_qubo(1, 12, 0.3);
        let solver = SimulatedAnnealing::with_seed(42);
        let a = solver.solve(&q).unwrap();
        let b = solver.solve(&q).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_explore_differently() {
        let q = random_qubo(2, 16, 0.3);
        let short = |seed| {
            SimulatedAnnealing { restarts: 1, sweeps: 3, seed, ..Default::default() }
                .sample(&q)
                .unwrap()
                .best()
                .unwrap()
                .assignment
                .clone()
        };
        // With only 3 sweeps the walk cannot have converged; distinct seeds
        // should end in distinct states for at least one of a few tries.
        let base = short(0);
        assert!((1..6).any(|s| short(s) != base));
    }

    #[test]
    fn sample_returns_one_read_per_restart() {
        let q = random_qubo(3, 8, 0.4);
        let set = SimulatedAnnealing { restarts: 7, sweeps: 10, ..Default::default() }
            .sample(&q)
            .unwrap();
        assert_eq!(set.total_reads(), 7);
    }

    #[test]
    fn schedules_interpolate_as_documented() {
        let g = CoolingSchedule::Geometric { t0: 8.0, ratio: 0.5 };
        assert_eq!(g.temperature(0, 10), 8.0);
        assert_eq!(g.temperature(3, 10), 1.0);

        let l = CoolingSchedule::Linear { t0: 10.0, t1: 0.0 };
        assert_eq!(l.temperature(0, 11), 10.0);
        assert_eq!(l.temperature(10, 11), 0.0);
        assert_eq!(l.temperature(5, 11), 5.0);
        // Degenerate single-sweep schedule lands on the final temperature.
        assert_eq!(l.temperature(0, 1), 0.0);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let q = random_qubo(4, 14, 0.35);
        let at = |threads| {
            SimulatedAnnealing {
                restarts: 6,
                sweeps: 40,
                seed: 9,
                parallelism: Parallelism::new(threads),
                ..Default::default()
            }
            .sample(&q)
            .unwrap()
        };
        let sequential = at(1);
        assert_eq!(sequential, at(4));
        assert_eq!(sequential, at(8));
    }

    #[test]
    fn rejects_geometric_ratio_outside_unit_interval() {
        let q = random_qubo(0, 6, 0.5);
        for ratio in [0.0, 1.0, 1.5, -0.3, f64::NAN] {
            let solver = SimulatedAnnealing {
                schedule: Some(CoolingSchedule::Geometric { t0: 2.0, ratio }),
                ..Default::default()
            };
            match solver.sample(&q) {
                Err(QuboError::InvalidSchedule { .. }) => {}
                other => panic!("ratio {ratio} accepted: {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_non_positive_geometric_t0() {
        let q = random_qubo(0, 6, 0.5);
        for t0 in [0.0, -1.0, f64::NAN] {
            let solver = SimulatedAnnealing {
                schedule: Some(CoolingSchedule::Geometric { t0, ratio: 0.9 }),
                ..Default::default()
            };
            match solver.sample(&q) {
                Err(QuboError::InvalidSchedule { .. }) => {}
                other => panic!("t0 {t0} accepted: {other:?}"),
            }
        }
    }

    #[test]
    fn sampling_records_restart_and_sweep_counters() {
        // Concurrent tests also touch these counters, so assert on the
        // delta being at least this call's contribution.
        let q = random_qubo(6, 8, 0.4);
        let before = qjo_obs::global().snapshot();
        SimulatedAnnealing { restarts: 3, sweeps: 5, ..Default::default() }.sample(&q).unwrap();
        let deltas = qjo_obs::global().snapshot().counter_deltas_since(&before);
        assert!(deltas["sa.restarts"] >= 3, "{deltas:?}");
        assert!(deltas["sa.sweeps"] >= 15, "{deltas:?}");
        let spans = qjo_obs::global().snapshot().histograms;
        assert!(spans["qubo.sa.sample"].count >= 1);
    }

    #[test]
    fn convergence_recorder_captures_energy_and_acceptance_curves() {
        // The recorder is process-global, so concurrent tests may add
        // rows; assert only on this call's contribution (lower bounds).
        let q = random_qubo(5, 8, 0.4);
        qjo_obs::convergence::start(2);
        SimulatedAnnealing { restarts: 2, sweeps: 8, ..Default::default() }.sample(&q).unwrap();
        let drained = qjo_obs::convergence::drain_csv();
        let csv = &drained.iter().find(|(g, _)| g == "sa").expect("sa group recorded").1;
        // 2 restarts × 4 kept sweeps (stride 2) per curve.
        assert!(csv.matches(",energy,").count() >= 8, "{csv}");
        assert!(csv.matches(",acceptance,").count() >= 8, "{csv}");
    }

    #[test]
    fn auto_schedule_scales_with_coefficients() {
        let mut q = Qubo::new(2);
        q.add_quadratic(0, 1, 100.0);
        match CoolingSchedule::auto_for(&q) {
            CoolingSchedule::Geometric { t0, .. } => assert_eq!(t0, 200.0),
            other => panic!("unexpected schedule {other:?}"),
        }
    }
}
