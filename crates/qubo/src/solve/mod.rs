//! Classical QUBO solvers.
//!
//! These provide ground truth (exact enumeration for small models) and
//! classical heuristic baselines (simulated annealing, tabu search) against
//! which the simulated quantum backends are assessed.

mod descent;
mod exact;
mod sa;
mod tabu;

pub use descent::SteepestDescent;
pub use exact::ExactSolver;
pub use sa::{CoolingSchedule, SimulatedAnnealing};
pub use tabu::TabuSearch;

use crate::sample::Sample;

/// The outcome of a single solver run: the best assignment found.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Best assignment found.
    pub assignment: Vec<bool>,
    /// Its energy.
    pub energy: f64,
}

impl From<Solution> for Sample {
    fn from(s: Solution) -> Sample {
        Sample { assignment: s.assignment, energy: s.energy, occurrences: 1 }
    }
}
