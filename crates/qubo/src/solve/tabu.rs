//! Tabu search over single-bit flips.
//!
//! A steepest-descent local search that forbids undoing recent flips for a
//! configurable tenure, with the standard aspiration criterion (a tabu move
//! is allowed when it improves on the best energy seen).
//!
//! Restarts are independent work units: each derives its own RNG stream
//! from `(seed, restart_index)` via [`qjo_exec::stream_seed`], and the
//! cross-restart winner is reduced in restart order (earliest restart wins
//! ties), so the result is bit-identical at any [`Parallelism`] setting.

use qjo_exec::{par_map_seeded, Parallelism};
use rand::RngExt;

use crate::error::QuboError;
use crate::model::Qubo;
use crate::solve::Solution;

/// Tabu-search solver.
#[derive(Debug, Clone)]
pub struct TabuSearch {
    /// Number of restarts from random assignments.
    pub restarts: usize,
    /// Flip iterations per restart.
    pub iterations: usize,
    /// How many iterations a flipped variable stays tabu. `None` picks
    /// `max(4, n / 10)` at solve time.
    pub tenure: Option<usize>,
    /// RNG seed for the restart states.
    pub seed: u64,
    /// Worker threads for the restart loop; affects wall-clock only,
    /// never results.
    pub parallelism: Parallelism,
}

impl Default for TabuSearch {
    fn default() -> Self {
        TabuSearch {
            restarts: 5,
            iterations: 2_000,
            tenure: None,
            seed: 0,
            parallelism: Parallelism::auto(),
        }
    }
}

impl TabuSearch {
    /// Creates a solver with default parameters and the given seed.
    pub fn with_seed(seed: u64) -> Self {
        TabuSearch { seed, ..Default::default() }
    }

    /// Runs the search, returning the best assignment found.
    pub fn solve(&self, qubo: &Qubo) -> Result<Solution, QuboError> {
        qubo.validate()?;
        assert!(self.restarts >= 1, "need at least one restart");
        let n = qubo.num_vars();
        if n == 0 {
            return Ok(Solution { assignment: Vec::new(), energy: qubo.offset() });
        }
        let _span = qjo_obs::span!("qubo.tabu.solve");
        qjo_obs::counter!("tabu.restarts").add(self.restarts as u64);

        let tenure = self.tenure.unwrap_or_else(|| (n / 10).max(4)).min(n.saturating_sub(1));
        let compiled = qubo.compile();

        let restarts: Vec<usize> = (0..self.restarts).collect();
        let per_restart = par_map_seeded(restarts, self.seed, self.parallelism, |_, rng| {
            // Keyed by the restart's par_map unit path; inert unless a
            // convergence recorder is active.
            let energy_curve = qjo_obs::convergence::series("tabu", "energy");

            let mut x: Vec<bool> = (0..n).map(|_| rng.random_bool(0.5)).collect();
            let mut energy = compiled.energy(&x);
            let mut gains = compiled.all_flip_gains(&x);
            // tabu_until[i]: first iteration at which flipping i is allowed again.
            let mut tabu_until = vec![0usize; n];
            let mut best_e = energy;
            let mut best_x = x.clone();
            let mut iterations_run = 0u64;

            for iter in 0..self.iterations {
                iterations_run += 1;
                // Pick the best admissible flip (non-tabu, or aspirated).
                let mut chosen: Option<(usize, f64)> = None;
                for i in 0..n {
                    let gain = gains[i];
                    let tabu = tabu_until[i] > iter;
                    let aspirated = energy + gain < best_e - 1e-15;
                    if tabu && !aspirated {
                        continue;
                    }
                    match chosen {
                        Some((_, g)) if g <= gain => {}
                        _ => chosen = Some((i, gain)),
                    }
                }
                let Some((flip, gain)) = chosen else {
                    break; // Everything tabu and nothing aspirated: stuck.
                };

                x[flip] = !x[flip];
                energy += gain;
                tabu_until[flip] = iter + 1 + tenure;
                // Incrementally refresh gains: the flipped variable's gain
                // negates; each neighbour j gains/loses its coupling weight.
                gains[flip] = -gains[flip];
                for (j, w) in compiled.neighbors(flip) {
                    let delta = if x[flip] { w } else { -w };
                    gains[j] += if x[j] { -delta } else { delta };
                }

                if energy < best_e {
                    best_e = energy;
                    best_x.copy_from_slice(&x);
                }
                energy_curve.record(iter as u64, energy);
            }

            // Per-unit totals merge by commutative atomic add, so the
            // final counter is thread-count independent.
            qjo_obs::counter!("tabu.iterations").add(iterations_run);
            Solution { assignment: best_x, energy: best_e }
        });

        // Reduce in restart order so ties deterministically keep the
        // earliest restart, independent of thread scheduling.
        let mut global_best: Option<Solution> = None;
        for candidate in per_restart {
            match &global_best {
                Some(g) if g.energy <= candidate.energy => {}
                _ => global_best = Some(candidate),
            }
        }
        Ok(global_best.expect("at least one restart ran"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::ExactSolver;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_qubo(seed: u64, n: usize, density: f64) -> Qubo {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut q = Qubo::new(n);
        for i in 0..n {
            q.add_linear(i, rng.random_range(-2.0..2.0));
            for j in i + 1..n {
                if rng.random_bool(density) {
                    q.add_quadratic(i, j, rng.random_range(-2.0..2.0));
                }
            }
        }
        q
    }

    #[test]
    fn reaches_exact_optimum_on_small_models() {
        for seed in 0..5 {
            let q = random_qubo(seed, 12, 0.4);
            let exact = ExactSolver::new().min_energy(&q).unwrap();
            let ts = TabuSearch::default().solve(&q).unwrap();
            assert!(
                (ts.energy - exact).abs() < 1e-9,
                "seed {seed}: tabu {} vs exact {exact}",
                ts.energy
            );
        }
    }

    #[test]
    fn incremental_gains_stay_consistent() {
        // If the incremental gain updates drifted, the final reported energy
        // would disagree with a fresh evaluation of the final assignment.
        let q = random_qubo(11, 20, 0.5);
        let s =
            TabuSearch { restarts: 2, iterations: 500, ..Default::default() }.solve(&q).unwrap();
        let fresh = q.energy(&s.assignment).unwrap();
        assert!((s.energy - fresh).abs() < 1e-9, "{} vs {fresh}", s.energy);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let q = random_qubo(5, 15, 0.3);
        let a = TabuSearch::with_seed(9).solve(&q).unwrap();
        let b = TabuSearch::with_seed(9).solve(&q).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn escapes_local_minimum_that_greedy_cannot() {
        // f = 3(x0 + x1) - 8 x0 x1: greedy from (0,0) is stuck (both single
        // flips cost +3) but the global minimum (1,1) has energy -2.
        let mut q = Qubo::new(2);
        q.add_linear(0, 3.0);
        q.add_linear(1, 3.0);
        q.add_quadratic(0, 1, -8.0);
        let s = TabuSearch {
            restarts: 1,
            iterations: 50,
            tenure: Some(1),
            seed: 3,
            ..Default::default()
        }
        .solve(&q)
        .unwrap();
        assert_eq!(s.energy, -2.0);
        assert_eq!(s.assignment, vec![true, true]);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let q = random_qubo(7, 18, 0.3);
        let at = |threads| {
            TabuSearch {
                restarts: 4,
                iterations: 300,
                seed: 2,
                parallelism: Parallelism::new(threads),
                ..Default::default()
            }
            .solve(&q)
            .unwrap()
        };
        let sequential = at(1);
        assert_eq!(sequential, at(4));
        assert_eq!(sequential, at(8));
    }

    #[test]
    fn zero_variable_model_returns_offset() {
        let mut q = Qubo::new(0);
        q.add_offset(-1.5);
        let s = TabuSearch::default().solve(&q).unwrap();
        assert_eq!(s.energy, -1.5);
    }
}
