//! Plain-text (de)serialisation of QUBO models.
//!
//! A line-oriented format for sharing problem instances between runs and
//! tools (the paper ships its QUBOs in its reproduction package; this is
//! our equivalent). Format:
//!
//! ```text
//! # comments and blank lines are ignored
//! vars 3
//! offset 1.5
//! lin 0 -2.0
//! quad 0 1 4.0
//! ```

use crate::model::Qubo;

/// Errors while parsing the text format.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// The mandatory `vars` header is missing or misplaced.
    MissingHeader,
    /// A line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A variable index exceeded the declared count.
    IndexOutOfRange {
        /// 1-based line number.
        line: usize,
        /// The offending index.
        index: usize,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::MissingHeader => write!(f, "missing `vars N` header"),
            ParseError::BadLine { line, message } => write!(f, "line {line}: {message}"),
            ParseError::IndexOutOfRange { line, index } => {
                write!(f, "line {line}: variable {index} out of range")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Serialises a QUBO to the text format (deterministic ordering).
pub fn to_text(qubo: &Qubo) -> String {
    let mut out = String::new();
    out.push_str("# qjo qubo v1\n");
    out.push_str(&format!("vars {}\n", qubo.num_vars()));
    if qubo.offset() != 0.0 {
        out.push_str(&format!("offset {}\n", qubo.offset()));
    }
    for (i, c) in qubo.linear_iter() {
        if c != 0.0 {
            out.push_str(&format!("lin {i} {c}\n"));
        }
    }
    for (i, j, c) in qubo.quadratic_iter() {
        if c != 0.0 {
            out.push_str(&format!("quad {i} {j} {c}\n"));
        }
    }
    out
}

/// Parses a QUBO from the text format.
pub fn from_text(text: &str) -> Result<Qubo, ParseError> {
    let mut qubo: Option<Qubo> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let keyword = parts.next().expect("non-empty line has a token");
        let bad =
            |message: &str| ParseError::BadLine { line: line_no, message: message.to_string() };
        let next_usize = |parts: &mut std::str::SplitWhitespace| -> Result<usize, ParseError> {
            parts.next().ok_or_else(|| bad("missing index"))?.parse().map_err(|_| bad("bad index"))
        };
        let next_f64 = |parts: &mut std::str::SplitWhitespace| -> Result<f64, ParseError> {
            parts.next().ok_or_else(|| bad("missing value"))?.parse().map_err(|_| bad("bad value"))
        };
        match keyword {
            "vars" => {
                let n = next_usize(&mut parts)?;
                qubo = Some(Qubo::new(n));
            }
            "offset" => {
                let q = qubo.as_mut().ok_or(ParseError::MissingHeader)?;
                let v = next_f64(&mut parts)?;
                q.add_offset(v);
            }
            "lin" => {
                let i = next_usize(&mut parts)?;
                let v = next_f64(&mut parts)?;
                let q = qubo.as_mut().ok_or(ParseError::MissingHeader)?;
                if i >= q.num_vars() {
                    return Err(ParseError::IndexOutOfRange { line: line_no, index: i });
                }
                q.add_linear(i, v);
            }
            "quad" => {
                let i = next_usize(&mut parts)?;
                let j = next_usize(&mut parts)?;
                let v = next_f64(&mut parts)?;
                let q = qubo.as_mut().ok_or(ParseError::MissingHeader)?;
                if i >= q.num_vars() || j >= q.num_vars() {
                    return Err(ParseError::IndexOutOfRange { line: line_no, index: i.max(j) });
                }
                q.add_quadratic(i, j, v);
            }
            other => {
                return Err(ParseError::BadLine {
                    line: line_no,
                    message: format!("unknown keyword `{other}`"),
                })
            }
        }
        if parts.next().is_some() {
            return Err(ParseError::BadLine {
                line: line_no,
                message: "trailing tokens".to_string(),
            });
        }
    }
    qubo.ok_or(ParseError::MissingHeader)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Qubo {
        let mut q = Qubo::new(3);
        q.add_offset(1.5);
        q.add_linear(0, -2.0);
        q.add_linear(2, 0.25);
        q.add_quadratic(0, 1, 4.0);
        q.add_quadratic(1, 2, -0.5);
        q
    }

    #[test]
    fn round_trip_preserves_energies() {
        let q = toy();
        let back = from_text(&to_text(&q)).expect("own output parses");
        for bits in 0..8u32 {
            let x: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(q.energy(&x).unwrap(), back.energy(&x).unwrap());
        }
        assert_eq!(back.num_vars(), 3);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header\n\nvars 2\n  # indented comment\nlin 1 3.0\n";
        let q = from_text(text).expect("parses");
        assert_eq!(q.num_vars(), 2);
        assert_eq!(q.linear(1), 3.0);
    }

    #[test]
    fn parse_errors_are_located() {
        assert_eq!(from_text(""), Err(ParseError::MissingHeader));
        assert_eq!(from_text("lin 0 1.0"), Err(ParseError::MissingHeader));
        match from_text("vars 2\nquad 0 5 1.0") {
            Err(ParseError::IndexOutOfRange { line: 2, index: 5 }) => {}
            other => panic!("unexpected {other:?}"),
        }
        match from_text("vars 2\nfrob 1") {
            Err(ParseError::BadLine { line: 2, .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
        match from_text("vars 2\nlin 0 1.0 extra") {
            Err(ParseError::BadLine { line: 2, .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
        match from_text("vars x") {
            Err(ParseError::BadLine { line: 1, .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn missing_and_malformed_fields_name_the_problem() {
        let msg = |text: &str| match from_text(text) {
            Err(ParseError::BadLine { message, .. }) => message,
            other => panic!("expected BadLine for {text:?}, got {other:?}"),
        };
        assert_eq!(msg("vars 2\nlin 0"), "missing value");
        assert_eq!(msg("vars 2\nlin"), "missing index");
        assert_eq!(msg("vars 2\nlin 0 abc"), "bad value");
        assert_eq!(msg("vars 2\nlin -1 1.0"), "bad index");
        assert_eq!(msg("vars 2\nquad 0 1"), "missing value");
        assert_eq!(msg("vars 2\noffset"), "missing value");
        assert_eq!(msg("vars"), "missing index");
    }

    #[test]
    fn body_lines_before_the_header_are_rejected() {
        // Every body keyword needs `vars N` first: the model's size is
        // what validates its indices.
        for text in ["offset 1.0\nvars 2", "lin 0 1.0\nvars 2", "quad 0 1 1.0\nvars 2"] {
            assert_eq!(from_text(text), Err(ParseError::MissingHeader), "{text:?}");
        }
    }

    #[test]
    fn lin_index_out_of_range_is_reported_too() {
        match from_text("vars 2\n\n# pad\nlin 2 1.0") {
            Err(ParseError::IndexOutOfRange { line: 4, index: 2 }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bad_line_display_carries_line_and_message() {
        let e = ParseError::BadLine { line: 3, message: "trailing tokens".to_string() };
        assert_eq!(e.to_string(), "line 3: trailing tokens");
        let e = from_text("vars 2\nquad 0 1 2.0 junk").unwrap_err();
        assert_eq!(e.to_string(), "line 2: trailing tokens");
    }

    #[test]
    fn zero_terms_are_omitted_from_output() {
        let mut q = Qubo::new(2);
        q.add_linear(0, 0.0);
        let text = to_text(&q);
        assert!(!text.contains("lin"));
        assert!(!text.contains("offset"));
    }

    #[test]
    fn display_messages_are_informative() {
        let e = ParseError::IndexOutOfRange { line: 7, index: 9 };
        assert!(e.to_string().contains('7') && e.to_string().contains('9'));
        assert!(ParseError::MissingHeader.to_string().contains("vars"));
    }
}
