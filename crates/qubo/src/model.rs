//! The [`Qubo`] builder type and its solver-friendly compiled form.

use std::collections::BTreeMap;

use crate::error::QuboError;
use crate::ising::IsingModel;

/// A quadratic unconstrained binary optimisation problem.
///
/// `Qubo` is a *builder*: coefficients accumulate via [`Qubo::add_linear`] and
/// [`Qubo::add_quadratic`], which is the natural fit for penalty-term
/// construction (the join-ordering encoding repeatedly adds squared
/// constraint expansions onto the same pairs). Solvers work on the
/// [`CompiledQubo`] produced by [`Qubo::compile`], which holds the same
/// polynomial in CSR-style adjacency form for O(deg) incremental energy
/// updates.
#[derive(Debug, Clone, PartialEq)]
pub struct Qubo {
    num_vars: usize,
    offset: f64,
    linear: Vec<f64>,
    /// Upper-triangular quadratic coefficients keyed by `(i, j)` with `i < j`.
    /// A BTreeMap keeps iteration deterministic, which keeps downstream
    /// circuit construction and embeddings reproducible under fixed seeds.
    quadratic: BTreeMap<(u32, u32), f64>,
}

impl Qubo {
    /// Creates an empty QUBO over `num_vars` binary variables.
    pub fn new(num_vars: usize) -> Self {
        Qubo { num_vars, offset: 0.0, linear: vec![0.0; num_vars], quadratic: BTreeMap::new() }
    }

    /// Number of declared variables (including ones with no coefficients).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The constant term of the polynomial.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Adds `value` to the constant term.
    pub fn add_offset(&mut self, value: f64) {
        self.offset += value;
    }

    /// Adds `value` to the linear coefficient of variable `i`.
    pub fn add_linear(&mut self, i: usize, value: f64) {
        assert!(i < self.num_vars, "variable {i} out of range ({})", self.num_vars);
        self.linear[i] += value;
    }

    /// Adds `value` to the quadratic coefficient of the pair `{i, j}`.
    ///
    /// The order of `i` and `j` is irrelevant; `i == j` is folded into the
    /// linear term since `x_i^2 = x_i` for binary variables.
    pub fn add_quadratic(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.num_vars, "variable {i} out of range ({})", self.num_vars);
        assert!(j < self.num_vars, "variable {j} out of range ({})", self.num_vars);
        if i == j {
            self.linear[i] += value;
            return;
        }
        let key = (i.min(j) as u32, i.max(j) as u32);
        *self.quadratic.entry(key).or_insert(0.0) += value;
    }

    /// Linear coefficient of variable `i`.
    pub fn linear(&self, i: usize) -> f64 {
        self.linear[i]
    }

    /// Quadratic coefficient of the pair `{i, j}` (0.0 when absent).
    pub fn quadratic(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        let key = (i.min(j) as u32, i.max(j) as u32);
        self.quadratic.get(&key).copied().unwrap_or(0.0)
    }

    /// Iterates over the non-zero quadratic terms as `(i, j, c_ij)` with `i < j`.
    pub fn quadratic_iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.quadratic.iter().map(|(&(i, j), &c)| (i as usize, j as usize, c))
    }

    /// Iterates over the linear terms as `(i, c_ii)`, including zeros.
    pub fn linear_iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.linear.iter().copied().enumerate()
    }

    /// Number of stored (possibly zero after cancellation) quadratic entries.
    pub fn num_quadratic_terms(&self) -> usize {
        self.quadratic.len()
    }

    /// Number of non-zero quadratic entries, i.e. edges of the QUBO graph.
    pub fn num_interactions(&self) -> usize {
        self.quadratic.values().filter(|c| **c != 0.0).count()
    }

    /// Removes exact-zero quadratic entries left behind by cancellation.
    pub fn prune_zeros(&mut self) {
        self.quadratic.retain(|_, c| *c != 0.0);
    }

    /// Largest absolute coefficient (linear or quadratic); 0.0 for an empty model.
    pub fn max_abs_coefficient(&self) -> f64 {
        let lin = self.linear.iter().fold(0.0_f64, |m, c| m.max(c.abs()));
        let quad = self.quadratic.values().fold(0.0_f64, |m, c| m.max(c.abs()));
        lin.max(quad)
    }

    /// Checks all coefficients are finite.
    pub fn validate(&self) -> Result<(), QuboError> {
        for (i, c) in self.linear.iter().enumerate() {
            if !c.is_finite() {
                return Err(QuboError::NonFiniteCoefficient { i, j: i });
            }
        }
        for (&(i, j), c) in &self.quadratic {
            if !c.is_finite() {
                return Err(QuboError::NonFiniteCoefficient { i: i as usize, j: j as usize });
            }
        }
        Ok(())
    }

    /// Evaluates the polynomial at the given binary assignment.
    pub fn energy(&self, x: &[bool]) -> Result<f64, QuboError> {
        if x.len() != self.num_vars {
            return Err(QuboError::AssignmentLength { got: x.len(), expected: self.num_vars });
        }
        let mut e = self.offset;
        for (i, &c) in self.linear.iter().enumerate() {
            if x[i] {
                e += c;
            }
        }
        for (&(i, j), &c) in &self.quadratic {
            if x[i as usize] && x[j as usize] {
                e += c;
            }
        }
        Ok(e)
    }

    /// Degrees (number of distinct quadratic partners) of every variable.
    pub fn degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.num_vars];
        for (&(i, j), &c) in &self.quadratic {
            if c != 0.0 {
                deg[i as usize] += 1;
                deg[j as usize] += 1;
            }
        }
        deg
    }

    /// Adjacency lists of the QUBO graph (non-zero quadratic structure only).
    pub fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.num_vars];
        for (&(i, j), &c) in &self.quadratic {
            if c != 0.0 {
                adj[i as usize].push(j as usize);
                adj[j as usize].push(i as usize);
            }
        }
        adj
    }

    /// Converts to the spin (Ising) formulation with `x_i = (1 + s_i) / 2`.
    ///
    /// Energies are preserved exactly: for every assignment,
    /// `qubo.energy(x) == ising.energy(s)` when `s_i = 2 x_i − 1`.
    pub fn to_ising(&self) -> IsingModel {
        let n = self.num_vars;
        let mut h = vec![0.0; n];
        let mut j_terms: BTreeMap<(u32, u32), f64> = BTreeMap::new();
        let mut offset = self.offset;

        for (i, &c) in self.linear.iter().enumerate() {
            // c * x = c (1+s)/2
            h[i] += c / 2.0;
            offset += c / 2.0;
        }
        for (&(a, b), &c) in &self.quadratic {
            // c * x_a x_b = c (1+s_a)(1+s_b)/4
            offset += c / 4.0;
            h[a as usize] += c / 4.0;
            h[b as usize] += c / 4.0;
            *j_terms.entry((a, b)).or_insert(0.0) += c / 4.0;
        }
        IsingModel::from_parts(h, j_terms, offset)
    }

    /// Compiles into adjacency (CSR) form for fast incremental solvers.
    pub fn compile(&self) -> CompiledQubo {
        let n = self.num_vars;
        let mut neighbor_counts = vec![0usize; n];
        for (&(i, j), &c) in &self.quadratic {
            if c != 0.0 {
                neighbor_counts[i as usize] += 1;
                neighbor_counts[j as usize] += 1;
            }
        }
        let mut row_starts = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        row_starts.push(0);
        for count in &neighbor_counts {
            acc += count;
            row_starts.push(acc);
        }
        let mut cols = vec![0u32; acc];
        let mut weights = vec![0.0f64; acc];
        let mut cursor = row_starts[..n].to_vec();
        for (&(i, j), &c) in &self.quadratic {
            if c != 0.0 {
                cols[cursor[i as usize]] = j;
                weights[cursor[i as usize]] = c;
                cursor[i as usize] += 1;
                cols[cursor[j as usize]] = i;
                weights[cursor[j as usize]] = c;
                cursor[j as usize] += 1;
            }
        }
        CompiledQubo {
            num_vars: n,
            offset: self.offset,
            linear: self.linear.clone(),
            row_starts,
            cols,
            weights,
        }
    }
}

/// A [`Qubo`] flattened into CSR adjacency form.
///
/// Supports O(degree) *flip gains*: the energy change of flipping one
/// variable given the current assignment, which is the inner-loop primitive
/// of simulated annealing and tabu search.
#[derive(Debug, Clone)]
pub struct CompiledQubo {
    num_vars: usize,
    offset: f64,
    linear: Vec<f64>,
    row_starts: Vec<usize>,
    cols: Vec<u32>,
    weights: Vec<f64>,
}

impl CompiledQubo {
    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Constant term.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Neighbours of variable `i` with their coupling weights.
    pub fn neighbors(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let range = self.row_starts[i]..self.row_starts[i + 1];
        self.cols[range.clone()].iter().zip(&self.weights[range]).map(|(&c, &w)| (c as usize, w))
    }

    /// Full energy of an assignment (O(n + m)).
    pub fn energy(&self, x: &[bool]) -> f64 {
        debug_assert_eq!(x.len(), self.num_vars);
        let mut e = self.offset;
        for (i, &c) in self.linear.iter().enumerate() {
            if x[i] {
                e += c;
            }
        }
        // Each edge is stored twice in CSR; count pairs once via i < j.
        for i in 0..self.num_vars {
            if !x[i] {
                continue;
            }
            for (j, w) in self.neighbors(i) {
                if j > i && x[j] {
                    e += w;
                }
            }
        }
        e
    }

    /// Energy change from flipping variable `i` in assignment `x`.
    pub fn flip_gain(&self, x: &[bool], i: usize) -> f64 {
        let mut partial = self.linear[i];
        for (j, w) in self.neighbors(i) {
            if x[j] {
                partial += w;
            }
        }
        if x[i] {
            -partial
        } else {
            partial
        }
    }

    /// Flip gains for every variable at once (O(n + m)).
    pub fn all_flip_gains(&self, x: &[bool]) -> Vec<f64> {
        (0..self.num_vars).map(|i| self.flip_gain(x, i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Qubo {
        // f(x) = 1 - 2 x0 + 3 x1 + 4 x0 x1 - x2 + 0.5 x1 x2
        let mut q = Qubo::new(3);
        q.add_offset(1.0);
        q.add_linear(0, -2.0);
        q.add_linear(1, 3.0);
        q.add_quadratic(0, 1, 4.0);
        q.add_linear(2, -1.0);
        q.add_quadratic(2, 1, 0.5);
        q
    }

    #[test]
    fn energy_matches_hand_computation() {
        let q = toy();
        assert_eq!(q.energy(&[false, false, false]).unwrap(), 1.0);
        assert_eq!(q.energy(&[true, false, false]).unwrap(), -1.0);
        assert_eq!(q.energy(&[true, true, false]).unwrap(), 6.0);
        assert_eq!(q.energy(&[true, true, true]).unwrap(), 5.5);
        assert_eq!(q.energy(&[false, false, true]).unwrap(), 0.0);
    }

    #[test]
    fn quadratic_is_symmetric_and_accumulates() {
        let mut q = Qubo::new(2);
        q.add_quadratic(1, 0, 2.0);
        q.add_quadratic(0, 1, 3.0);
        assert_eq!(q.quadratic(0, 1), 5.0);
        assert_eq!(q.quadratic(1, 0), 5.0);
        assert_eq!(q.num_quadratic_terms(), 1);
    }

    #[test]
    fn diagonal_quadratic_folds_into_linear() {
        let mut q = Qubo::new(1);
        q.add_quadratic(0, 0, 4.0);
        assert_eq!(q.linear(0), 4.0);
        assert_eq!(q.num_quadratic_terms(), 0);
    }

    #[test]
    fn energy_rejects_wrong_length() {
        let q = toy();
        assert!(matches!(
            q.energy(&[true, false]),
            Err(QuboError::AssignmentLength { got: 2, expected: 3 })
        ));
    }

    #[test]
    fn degrees_and_adjacency_agree() {
        let q = toy();
        assert_eq!(q.degrees(), vec![1, 2, 1]);
        let adj = q.adjacency();
        assert_eq!(adj[0], vec![1]);
        assert_eq!(adj[1], vec![0, 2]);
        assert_eq!(adj[2], vec![1]);
    }

    #[test]
    fn prune_zeros_drops_cancelled_terms() {
        let mut q = Qubo::new(2);
        q.add_quadratic(0, 1, 2.0);
        q.add_quadratic(0, 1, -2.0);
        assert_eq!(q.num_quadratic_terms(), 1);
        assert_eq!(q.num_interactions(), 0);
        q.prune_zeros();
        assert_eq!(q.num_quadratic_terms(), 0);
    }

    #[test]
    fn compiled_energy_matches_builder_energy() {
        let q = toy();
        let c = q.compile();
        for bits in 0..8u32 {
            let x: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(q.energy(&x).unwrap(), c.energy(&x));
        }
    }

    #[test]
    fn flip_gain_matches_energy_difference() {
        let q = toy();
        let c = q.compile();
        for bits in 0..8u32 {
            let x: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            for i in 0..3 {
                let mut y = x.clone();
                y[i] = !y[i];
                let expected = c.energy(&y) - c.energy(&x);
                assert!((c.flip_gain(&x, i) - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn ising_round_trip_preserves_energy() {
        let q = toy();
        let ising = q.to_ising();
        for bits in 0..8u32 {
            let x: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let s: Vec<i8> = x.iter().map(|&b| if b { 1 } else { -1 }).collect();
            let eq = q.energy(&x).unwrap();
            let ei = ising.energy(&s);
            assert!((eq - ei).abs() < 1e-12, "x={x:?}: {eq} vs {ei}");
        }
    }

    #[test]
    fn validate_flags_non_finite() {
        let mut q = Qubo::new(2);
        q.add_linear(0, f64::NAN);
        assert!(q.validate().is_err());

        let mut q = Qubo::new(2);
        q.add_quadratic(0, 1, f64::INFINITY);
        assert!(q.validate().is_err());

        assert!(toy().validate().is_ok());
    }

    #[test]
    fn max_abs_coefficient_scans_all_terms() {
        let q = toy();
        assert_eq!(q.max_abs_coefficient(), 4.0);
        assert_eq!(Qubo::new(3).max_abs_coefficient(), 0.0);
    }
}
