//! Property-based tests for the QUBO substrate.

use proptest::collection::vec;
use proptest::prelude::*;
use qjo_qubo::io::{from_text, to_text};
use qjo_qubo::preprocess::fix_variables;
use qjo_qubo::solve::{ExactSolver, SimulatedAnnealing, SteepestDescent, TabuSearch};
use qjo_qubo::{ising, Qubo};

/// Strategy producing a random QUBO together with its variable count.
fn arb_qubo(max_vars: usize) -> impl Strategy<Value = Qubo> {
    (1..=max_vars).prop_flat_map(|n| {
        let lin = vec(-5.0..5.0f64, n);
        let quad = vec((-5.0..5.0f64,), n * (n - 1) / 2);
        let offset = -3.0..3.0f64;
        (lin, quad, offset).prop_map(move |(lin, quad, offset)| {
            let mut q = Qubo::new(n);
            q.add_offset(offset);
            for (i, c) in lin.into_iter().enumerate() {
                q.add_linear(i, c);
            }
            let mut it = quad.into_iter();
            for i in 0..n {
                for j in i + 1..n {
                    let (c,) = it.next().expect("sized above");
                    q.add_quadratic(i, j, c);
                }
            }
            q
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// QUBO → Ising conversion preserves energies on every assignment.
    #[test]
    fn ising_conversion_preserves_energy(q in arb_qubo(7)) {
        let m = q.to_ising();
        let n = q.num_vars();
        for bits in 0..1u32 << n {
            let x: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            let s = ising::bits_to_spins(&x);
            let eq = q.energy(&x).unwrap();
            let ei = m.energy(&s);
            prop_assert!((eq - ei).abs() < 1e-9 * (1.0 + eq.abs()), "{eq} vs {ei}");
        }
    }

    /// Ising → QUBO round-trips to the same polynomial values.
    #[test]
    fn ising_round_trip(q in arb_qubo(6)) {
        let back = q.to_ising().to_qubo();
        let n = q.num_vars();
        for bits in 0..1u32 << n {
            let x: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            let a = q.energy(&x).unwrap();
            let b = back.energy(&x).unwrap();
            prop_assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()));
        }
    }

    /// The exact solver's reported energy re-evaluates to itself and is a
    /// lower bound on every enumerated assignment.
    #[test]
    fn exact_solver_returns_global_minimum(q in arb_qubo(8)) {
        let s = ExactSolver::new().solve(&q).unwrap();
        let n = q.num_vars();
        prop_assert!((q.energy(&s.assignment).unwrap() - s.energy).abs() < 1e-9);
        for bits in 0..1u32 << n {
            let x: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            prop_assert!(q.energy(&x).unwrap() >= s.energy - 1e-9);
        }
    }

    /// Heuristics never report an energy below the exact ground state, and
    /// their reported energy matches a re-evaluation of their assignment.
    #[test]
    fn heuristics_are_sound(q in arb_qubo(8)) {
        let exact = ExactSolver::new().min_energy(&q).unwrap();
        let sa = SimulatedAnnealing::with_seed(1).solve(&q).unwrap();
        prop_assert!((q.energy(&sa.assignment).unwrap() - sa.energy).abs() < 1e-9);
        prop_assert!(sa.energy >= exact - 1e-9);

        let ts = TabuSearch::with_seed(1).solve(&q).unwrap();
        prop_assert!((q.energy(&ts.assignment).unwrap() - ts.energy).abs() < 1e-9);
        prop_assert!(ts.energy >= exact - 1e-9);
    }

    /// Compiled flip gains agree with explicit energy differences.
    #[test]
    fn flip_gains_agree_with_energy_deltas(
        q in arb_qubo(7),
        bits in any::<u32>(),
    ) {
        let n = q.num_vars();
        let c = q.compile();
        let x: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
        for i in 0..n {
            let mut y = x.clone();
            y[i] = !y[i];
            let delta = q.energy(&y).unwrap() - q.energy(&x).unwrap();
            prop_assert!((c.flip_gain(&x, i) - delta).abs() < 1e-9);
        }
    }

    /// Steepest descent ends in a true local minimum and never beats the
    /// exact optimum.
    #[test]
    fn steepest_descent_is_sound(q in arb_qubo(8)) {
        let exact = ExactSolver::new().min_energy(&q).unwrap();
        let sd = SteepestDescent::with_seed(2).solve(&q).unwrap();
        prop_assert!(sd.energy >= exact - 1e-9);
        prop_assert!((q.energy(&sd.assignment).unwrap() - sd.energy).abs() < 1e-9);
        let compiled = q.compile();
        for i in 0..q.num_vars() {
            prop_assert!(compiled.flip_gain(&sd.assignment, i) >= -1e-9);
        }
    }

    /// Persistency preprocessing never changes the optimal value, and the
    /// lifted reduced optimum evaluates to it.
    #[test]
    fn preprocessing_preserves_optimum(q in arb_qubo(8)) {
        let before = ExactSolver::new().min_energy(&q).unwrap();
        let pre = fix_variables(&q);
        let lifted = if pre.reduced.num_vars() == 0 {
            pre.lift(&[])
        } else {
            let sol = ExactSolver::new().solve(&pre.reduced).unwrap();
            pre.lift(&sol.assignment)
        };
        let after = q.energy(&lifted).unwrap();
        prop_assert!((before - after).abs() < 1e-9, "{before} vs {after}");
    }

    /// Text serialisation round-trips energies exactly.
    #[test]
    fn text_io_round_trips(q in arb_qubo(6)) {
        let back = from_text(&to_text(&q)).expect("own output parses");
        let n = q.num_vars();
        for bits in 0..1u32 << n {
            let x: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            prop_assert_eq!(q.energy(&x).unwrap(), back.energy(&x).unwrap());
        }
    }

    /// k-best solutions are sorted and each re-evaluates to its energy.
    #[test]
    fn k_best_is_sorted(q in arb_qubo(6), k in 1usize..6) {
        let sols = ExactSolver::new().solve_k_best(&q, k).unwrap();
        prop_assert!(!sols.is_empty());
        for w in sols.windows(2) {
            prop_assert!(w[0].energy <= w[1].energy + 1e-12);
        }
        for s in &sols {
            prop_assert!((q.energy(&s.assignment).unwrap() - s.energy).abs() < 1e-9);
        }
    }
}
