//! Property-style tests for the QUBO substrate.
//!
//! Each property is exercised over a deterministic family of random
//! instances drawn from a seeded [`StdRng`] — the hermetic stand-in for the
//! proptest strategies the suite originally used. Seeds are fixed so
//! failures reproduce exactly.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use qjo_exec::Parallelism;
use qjo_qubo::io::{from_text, to_text};
use qjo_qubo::preprocess::fix_variables;
use qjo_qubo::solve::{ExactSolver, SimulatedAnnealing, SteepestDescent, TabuSearch};
use qjo_qubo::{ising, Qubo};

/// Draws a dense random QUBO with `1..=max_vars` variables.
fn arb_qubo(rng: &mut StdRng, max_vars: usize) -> Qubo {
    let n = rng.random_range(1..=max_vars);
    let mut q = Qubo::new(n);
    q.add_offset(rng.random_range(-3.0..3.0));
    for i in 0..n {
        q.add_linear(i, rng.random_range(-5.0..5.0));
        for j in i + 1..n {
            q.add_quadratic(i, j, rng.random_range(-5.0..5.0));
        }
    }
    q
}

fn for_cases(cases: u64, mut body: impl FnMut(&mut StdRng, u64)) {
    for case in 0..cases {
        let mut rng = StdRng::seed_from_u64(0xFEED_0000 + case);
        body(&mut rng, case);
    }
}

/// QUBO → Ising conversion preserves energies on every assignment.
#[test]
fn ising_conversion_preserves_energy() {
    for_cases(64, |rng, case| {
        let q = arb_qubo(rng, 7);
        let m = q.to_ising();
        let n = q.num_vars();
        for bits in 0..1u32 << n {
            let x: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            let s = ising::bits_to_spins(&x);
            let eq = q.energy(&x).unwrap();
            let ei = m.energy(&s);
            assert!((eq - ei).abs() < 1e-9 * (1.0 + eq.abs()), "case {case}: {eq} vs {ei}");
        }
    });
}

/// Ising → QUBO round-trips to the same polynomial values.
#[test]
fn ising_round_trip() {
    for_cases(64, |rng, case| {
        let q = arb_qubo(rng, 6);
        let back = q.to_ising().to_qubo();
        let n = q.num_vars();
        for bits in 0..1u32 << n {
            let x: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            let a = q.energy(&x).unwrap();
            let b = back.energy(&x).unwrap();
            assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()), "case {case}");
        }
    });
}

/// The exact solver's reported energy re-evaluates to itself and is a
/// lower bound on every enumerated assignment.
#[test]
fn exact_solver_returns_global_minimum() {
    for_cases(64, |rng, case| {
        let q = arb_qubo(rng, 8);
        let s = ExactSolver::new().solve(&q).unwrap();
        let n = q.num_vars();
        assert!((q.energy(&s.assignment).unwrap() - s.energy).abs() < 1e-9, "case {case}");
        for bits in 0..1u32 << n {
            let x: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            assert!(q.energy(&x).unwrap() >= s.energy - 1e-9, "case {case}");
        }
    });
}

/// Heuristics never report an energy below the exact ground state, and
/// their reported energy matches a re-evaluation of their assignment.
#[test]
fn heuristics_are_sound() {
    for_cases(32, |rng, case| {
        let q = arb_qubo(rng, 8);
        let exact = ExactSolver::new().min_energy(&q).unwrap();
        let sa = SimulatedAnnealing::with_seed(1).solve(&q).unwrap();
        assert!((q.energy(&sa.assignment).unwrap() - sa.energy).abs() < 1e-9, "case {case}");
        assert!(sa.energy >= exact - 1e-9, "case {case}");

        let ts = TabuSearch::with_seed(1).solve(&q).unwrap();
        assert!((q.energy(&ts.assignment).unwrap() - ts.energy).abs() < 1e-9, "case {case}");
        assert!(ts.energy >= exact - 1e-9, "case {case}");
    });
}

/// Compiled flip gains agree with explicit energy differences.
#[test]
fn flip_gains_agree_with_energy_deltas() {
    for_cases(64, |rng, case| {
        let q = arb_qubo(rng, 7);
        let bits: u32 = rng.random();
        let n = q.num_vars();
        let c = q.compile();
        let x: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
        for i in 0..n {
            let mut y = x.clone();
            y[i] = !y[i];
            let delta = q.energy(&y).unwrap() - q.energy(&x).unwrap();
            assert!((c.flip_gain(&x, i) - delta).abs() < 1e-9, "case {case} var {i}");
        }
    });
}

/// Steepest descent ends in a true local minimum and never beats the
/// exact optimum.
#[test]
fn steepest_descent_is_sound() {
    for_cases(32, |rng, case| {
        let q = arb_qubo(rng, 8);
        let exact = ExactSolver::new().min_energy(&q).unwrap();
        let sd = SteepestDescent::with_seed(2).solve(&q).unwrap();
        assert!(sd.energy >= exact - 1e-9, "case {case}");
        assert!((q.energy(&sd.assignment).unwrap() - sd.energy).abs() < 1e-9, "case {case}");
        let compiled = q.compile();
        for i in 0..q.num_vars() {
            assert!(compiled.flip_gain(&sd.assignment, i) >= -1e-9, "case {case} var {i}");
        }
    });
}

/// Persistency preprocessing never changes the optimal value, and the
/// lifted reduced optimum evaluates to it.
#[test]
fn preprocessing_preserves_optimum() {
    for_cases(64, |rng, case| {
        let q = arb_qubo(rng, 8);
        let before = ExactSolver::new().min_energy(&q).unwrap();
        let pre = fix_variables(&q);
        let lifted = if pre.reduced.num_vars() == 0 {
            pre.lift(&[])
        } else {
            let sol = ExactSolver::new().solve(&pre.reduced).unwrap();
            pre.lift(&sol.assignment)
        };
        let after = q.energy(&lifted).unwrap();
        assert!((before - after).abs() < 1e-9, "case {case}: {before} vs {after}");
    });
}

/// Text serialisation round-trips energies exactly.
#[test]
fn text_io_round_trips() {
    for_cases(64, |rng, case| {
        let q = arb_qubo(rng, 6);
        let back = from_text(&to_text(&q)).expect("own output parses");
        let n = q.num_vars();
        for bits in 0..1u32 << n {
            let x: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(q.energy(&x).unwrap(), back.energy(&x).unwrap(), "case {case}");
        }
    });
}

/// k-best solutions are sorted and each re-evaluates to its energy.
#[test]
fn k_best_is_sorted() {
    for_cases(64, |rng, case| {
        let q = arb_qubo(rng, 6);
        let k = rng.random_range(1usize..6);
        let sols = ExactSolver::new().solve_k_best(&q, k).unwrap();
        assert!(!sols.is_empty(), "case {case}");
        for w in sols.windows(2) {
            assert!(w[0].energy <= w[1].energy + 1e-12, "case {case}");
        }
        for s in &sols {
            assert!((q.energy(&s.assignment).unwrap() - s.energy).abs() < 1e-9, "case {case}");
        }
    });
}

/// Both restart-parallel heuristics return bit-identical solutions at any
/// thread count — the workspace determinism contract, checked on random
/// models rather than the unit tests' fixed ones.
#[test]
fn solver_results_are_thread_count_invariant() {
    for_cases(12, |rng, case| {
        let q = arb_qubo(rng, 10);

        let sa_at = |threads| {
            SimulatedAnnealing {
                restarts: 3,
                sweeps: 200,
                parallelism: Parallelism::new(threads),
                ..SimulatedAnnealing::with_seed(7)
            }
            .solve(&q)
            .unwrap()
        };
        let sa_seq = sa_at(1);
        for threads in [2, 8] {
            assert_eq!(sa_seq, sa_at(threads), "case {case}: SA at {threads} threads");
        }

        let ts_at = |threads| {
            TabuSearch {
                restarts: 3,
                iterations: 200,
                parallelism: Parallelism::new(threads),
                ..TabuSearch::with_seed(7)
            }
            .solve(&q)
            .unwrap()
        };
        let ts_seq = ts_at(1);
        for threads in [2, 8] {
            assert_eq!(ts_seq, ts_at(threads), "case {case}: tabu at {threads} threads");
        }
    });
}

/// SA's sample() distribution object is likewise thread-count invariant.
#[test]
fn sample_sets_are_thread_count_invariant() {
    for_cases(8, |rng, case| {
        let q = arb_qubo(rng, 9);
        let at = |threads| {
            SimulatedAnnealing {
                restarts: 4,
                sweeps: 150,
                parallelism: Parallelism::new(threads),
                ..SimulatedAnnealing::with_seed(11)
            }
            .sample(&q)
            .unwrap()
        };
        let sequential = at(1);
        for threads in [2, 8] {
            assert_eq!(sequential, at(threads), "case {case}: {threads} threads");
        }
    });
}
